// skelcl::Vector<T> — the paper's abstract vector data type (Sec. III-A):
//
//  * a unified abstraction for memory accessible by both CPU and GPU(s);
//  * implicit, *lazy* data transfers: data moves only when the side that
//    reads it holds a stale copy ("Before every data transfer, the vector
//    implementation checks whether the data transfer is necessary; only
//    then the data is actually transferred");
//  * *asynchronous* transfers: every upload/download is a non-blocking
//    enqueue whose completion event rides on the chunk (Chunk::ready);
//    skeleton launches depend on those events instead of finish(), so
//    transfers overlap compute on the device's DMA engines, and large
//    uploads are split into pieces that double-buffer against the first
//    consuming kernel (see upload());
//  * multi-device distributions (single / copy / block) with automatic
//    redistribution, including a user combine function when collapsing
//    copies into blocks (Sec. III-D, used by list-mode OSEM).
//
// Copying a Vector is shallow: handles share the underlying state, which
// is what makes `update(f, c, f)`-style aliased skeleton calls work.
#pragma once

#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "skelcl/detail/runtime.h"
#include "skelcl/detail/source_utils.h"
#include "skelcl/distribution.h"
#include "skelcl/type_name.h"
#include "trace/recorder.h"

namespace skelcl {

namespace detail {

class ExprNode;

/// Materializes a deferred skeleton computation (defined in expr.cpp).
/// No-op when the node has already been evaluated or is being evaluated
/// further up the call stack.
void forceExprNode(const std::shared_ptr<ExprNode>& node);

/// One device's share of a vector.
struct Chunk {
  ocl::Buffer buffer;
  std::size_t deviceIndex = 0;
  std::size_t offset = 0; // element offset into the full vector
  std::size_t count = 0;  // element count on this device
  /// Event of the last command that wrote this chunk (upload, kernel,
  /// combine...). Invalid when the chunk was never written on-device.
  /// Consumers pass it as a dependency instead of calling finish().
  ocl::Event ready;
  /// When the last upload was split for double buffering: (end element,
  /// event) per piece, ascending. A skeleton can launch the sub-range
  /// covered by piece i as soon as that piece's transfer lands, instead
  /// of waiting for `ready` (the last piece). Cleared once consumed.
  std::vector<std::pair<std::size_t, ocl::Event>> pieces;
};

/// Type-erased interface so Arguments can hold vectors of any element
/// type (paper Sec. III-C: "It is particularly easy to pass vectors as
/// arguments").
class VectorStateBase {
public:
  virtual ~VectorStateBase() = default;
  virtual std::size_t size() const = 0;
  virtual Distribution distribution() const = 0;
  virtual void ensureOnDevices() = 0;
  virtual const Chunk& chunkForDevice(std::size_t deviceIndex) const = 0;
  virtual void markDevicesModified() = 0;
  virtual std::string elementTypeName() const = 0;
  /// Event the device-`deviceIndex` chunk becomes valid at (invalid Event
  /// when the vector has no chunk there or it was never written).
  virtual ocl::Event readyEventOn(std::size_t deviceIndex) const = 0;
  /// Records `event` as the last writer of the device-`deviceIndex`
  /// chunk, so later consumers depend on it instead of a finish().
  virtual void recordEventOn(std::size_t deviceIndex,
                             const ocl::Event& event) = 0;

  // --- type-erased geometry, for the expression-DAG evaluator ----------
  // The lazy evaluator (detail/expr.cpp) executes plans over states of
  // arbitrary element type; these virtuals expose exactly the operations
  // the eager skeletons used to perform through the typed interface.
  virtual std::size_t elementSize() const = 0;
  virtual std::size_t singleDeviceIndex() const = 0;
  virtual const std::vector<Chunk>& chunks() const = 0;
  virtual std::vector<std::pair<std::size_t, ocl::Event>> takeUploadPieces(
      std::size_t deviceIndex) = 0;
  virtual void allocateLikeBase(const VectorStateBase& input) = 0;
  /// Allocates fresh block-distributed chunks with exactly the given
  /// geometry and no host staging (the buffers are outputs about to be
  /// written device-side). Unlike matchLayout this never uploads; unlike
  /// allocateLikeBase the geometry comes from a layout, not another
  /// vector — SparseGather mirrors its matrix's row partition this way.
  virtual void allocateBlockLayoutBase(const std::vector<Chunk>& layout) = 0;
  virtual void matchLayout(Distribution dist, std::size_t singleDevice,
                           const std::vector<Chunk>& layout) = 0;
  virtual void adoptDeviceBufferBase(ocl::Buffer buffer, std::size_t count,
                                     std::size_t deviceIndex,
                                     ocl::Event ready) = 0;
  virtual void setDistribution(Distribution dist,
                               std::size_t singleDevice) = 0;

  // --- deferred-computation plumbing ------------------------------------
  // A vector produced by a lazy skeleton call carries the producing DAG
  // node here until a true consumption point forces it. The state also
  // remembers which later nodes *read* it, so a host-side mutation can
  // snapshot their inputs (force them) before the values change —
  // preserving eager-execution semantics exactly.

  /// Installs `node` as this state's deferred producer. `count` is the
  /// result's declared element count, so size() works without forcing.
  void installPending(std::shared_ptr<ExprNode> node, std::size_t count) {
    pending_ = std::move(node);
    pendingCount_ = count;
  }
  const std::shared_ptr<ExprNode>& pendingNode() const { return pending_; }
  bool hasPending() const { return pending_ != nullptr; }
  std::size_t pendingCount() const { return pendingCount_; }
  void clearPending() { pending_.reset(); }

  /// Files the failure of this state's deferred producer. The async
  /// scheduler dispatches jobs away from their consumption points; when
  /// one throws, the error is parked here and rethrown — as the original
  /// typed exception — at this vector's own next consumption, leaving
  /// every other job's result intact (per-subgraph poisoning).
  void poisonPending(std::exception_ptr error) {
    pendingError_ = std::move(error);
  }

  /// Materializes this state's deferred producer, if any; rethrows a
  /// parked failure exactly once (matching the synchronous contract: a
  /// failed evaluation is never retried, later reads see host data).
  void forcePending() {
    rethrowPoison();
    if (pending_ != nullptr) {
      forceExprNode(pending_);
      // The force may have drained the scheduler, which dispatches this
      // very producer and parks its failure here instead of throwing.
      rethrowPoison();
    }
  }

  /// Registers a deferred node that reads this state.
  void addConsumer(const std::shared_ptr<ExprNode>& node) {
    consumers_.emplace_back(node);
  }

  /// Forces every still-deferred node that reads this state. Called
  /// before any operation that changes the observable values, so lazy
  /// readers see the pre-mutation data — exactly what eager execution
  /// would have computed.
  void forceConsumers() {
    if (consumers_.empty()) {
      return;
    }
    std::vector<std::weak_ptr<ExprNode>> readers;
    readers.swap(consumers_);
    for (const auto& weak : readers) {
      if (auto node = weak.lock()) {
        forceExprNode(node);
      }
    }
  }

protected:
  void rethrowPoison() {
    if (pendingError_ != nullptr) {
      std::exception_ptr error;
      std::swap(error, pendingError_);
      std::rethrow_exception(error);
    }
  }

  std::shared_ptr<ExprNode> pending_;
  std::size_t pendingCount_ = 0;
  std::exception_ptr pendingError_;
  std::vector<std::weak_ptr<ExprNode>> consumers_;
};

template <typename T>
class VectorState final : public VectorStateBase {
public:
  static_assert(std::is_trivially_copyable_v<T>,
                "Vector element types must be trivially copyable");

  VectorState() = default;
  explicit VectorState(std::vector<T> data) : host_(std::move(data)) {}

  // --- host access ------------------------------------------------------

  /// A deferred producer knows its result size before materializing.
  std::size_t size() const override {
    return pending_ ? pendingCount_ : host_.size();
  }

  std::vector<T>& hostForWrite() {
    forcePending();
    forceConsumers();
    ensureOnHost();
    hostDirty_ = true;
    devicesDirty_ = false;
    return host_;
  }

  const std::vector<T>& hostForRead() {
    forcePending();
    // A blocking read is a sync point: flush deferred readers of this
    // vector first so their kernels are already enqueued when the
    // download is — the out-of-order engines then stream the read while
    // those kernels compute, just as eager call-site enqueueing did.
    forceConsumers();
    ensureOnHost();
    return host_;
  }

  /// Host storage without any synchronization (size queries etc.).
  const std::vector<T>& rawHost() const { return host_; }

  void resizeHost(std::size_t n) {
    forcePending();
    forceConsumers();
    ensureOnHost();
    host_.resize(n);
    dropChunks();
    hostDirty_ = true;
  }

  /// Overwrites every element on the host side without downloading any
  /// stale device data first (unlike hostForWrite, which preserves it).
  void fillHost(const T& value) {
    forcePending();
    forceConsumers();
    host_.assign(host_.size(), value);
    hostDirty_ = true;
    devicesDirty_ = false;
  }

  // --- distribution -----------------------------------------------------

  Distribution distribution() const override { return dist_; }
  std::size_t singleDeviceIndex() const override { return singleDevice_; }

  void setDistribution(Distribution dist, std::size_t singleDevice = 0)
      override {
    auto& runtime = Runtime::instance();
    runtime.requireInit();
    forcePending();
    if (dist == dist_ &&
        (dist != Distribution::Single || singleDevice == singleDevice_)) {
      return;
    }
    // Generic path: stage through the host lazily. The data currently on
    // the devices is downloaded only if it is newer than the host copy.
    trace::ScopedHostSpan span(trace::HostKind::Redistribute,
                               "vector.redistribute");
    ensureOnHost();
    dropChunks();
    dist_ = dist;
    singleDevice_ = singleDevice;
    hostDirty_ = true;
  }

  /// Redistribution copy -> block with a user combine function: device i
  /// keeps its own portion and element-wise combines every other
  /// device's portion into it — entirely device-side (paper Sec. IV-B).
  void setDistributionCombine(const std::string& combineSource) {
    auto& runtime = Runtime::instance();
    runtime.requireInit();
    forcePending();
    forceConsumers();
    COMMON_EXPECTS(dist_ == Distribution::Copy,
                   "combine redistribution requires a copy distribution");
    if (chunks_.empty() || !devicesDirty_) {
      // Copies are not newer than the host: plain redistribution.
      setDistribution(Distribution::Block);
      return;
    }
    const std::size_t devices = runtime.deviceCount();
    if (devices == 1) {
      // Single device: the copy already is the (whole) block.
      chunks_[0].offset = 0;
      dist_ = Distribution::Block;
      return;
    }
    trace::ScopedHostSpan span(trace::HostKind::Combine, "vector.combine",
                               trace::kNoDevice,
                               host_.size() * sizeof(T));

    ocl::Program program =
        buildCombineProgram(typeName<T>(), combineSource);

    // Failure atomicity: chunks_/dist_ are replaced only after every
    // block has been fully enqueued. A transfer or launch failure
    // mid-combine discards the half-built blocks; the vector stays
    // copy-distributed with its old chunks and host data untouched, so
    // the caller can retry the redistribution after handling the error.
    std::vector<Chunk> blocks = blockLayout(devices);
    for (Chunk& block : blocks) {
      const std::size_t d = block.deviceIndex;
      try {
        auto& queue = runtime.queue(d);
        const auto& device = runtime.devices()[d];
        block.buffer = runtime.context().createBuffer(
            device, std::max<std::size_t>(1, block.count * sizeof(T)));
        if (block.count == 0) {
          // This device's share rounded to zero elements; seeding or
          // folding it would enqueue zero-size device commands.
          continue;
        }
        // Own portion seeds the block (depends on the chunk being valid).
        ocl::Event seeded = queue.enqueueCopyBuffer(
            chunks_[d].buffer, block.offset * sizeof(T), block.buffer, 0,
            block.count * sizeof(T), depsOf(chunks_[d]));
        // Fold in every other device's copy of the same region. Two temp
        // buffers double-buffer the pipeline: the cross-device copy of
        // portion j+1 streams over PCIe into one temp while the combine
        // kernel folds the other temp into the block.
        ocl::Buffer temps[2];
        ocl::Event tempFree[2]; // last kernel that *read* each temp
        temps[0] = runtime.context().createBuffer(
            device, std::max<std::size_t>(1, block.count * sizeof(T)));
        temps[1] = runtime.context().createBuffer(
            device, std::max<std::size_t>(1, block.count * sizeof(T)));
        ocl::Event folded = seeded;
        std::size_t slot = 0;
        for (std::size_t j = 0; j < devices; ++j) {
          if (j == d) {
            continue;
          }
          std::vector<ocl::Event> copyDeps = depsOf(chunks_[j]);
          if (tempFree[slot].valid()) {
            copyDeps.push_back(tempFree[slot]);
          }
          ocl::Event copied = queue.enqueueCopyBuffer(
              chunks_[j].buffer, block.offset * sizeof(T), temps[slot], 0,
              block.count * sizeof(T), copyDeps);
          ocl::Kernel kernel = program.createKernel("skelcl_combine");
          kernel.setArg(0, block.buffer);
          kernel.setArg(1, temps[slot]);
          kernel.setArg(2, std::uint32_t(block.count));
          const std::size_t wg = std::min<std::size_t>(
              runtime.defaultWorkGroupSize(), device.maxWorkGroupSize());
          const std::size_t global = (block.count + wg - 1) / wg * wg;
          folded = queue.enqueueNDRange(kernel, ocl::NDRange1D{global, wg},
                                        {copied, folded});
          tempFree[slot] = folded;
          slot ^= 1;
        }
        block.ready = folded;
      } catch (ocl::ClError& e) {
        e.prependContext("combine redistribution on device " +
                         std::to_string(d));
        throw;
      }
    }
    chunks_ = std::move(blocks);
    dist_ = Distribution::Block;
    devicesDirty_ = true;
  }

  // --- device access ----------------------------------------------------

  void ensureOnDevices() override {
    forcePending();
    auto& runtime = Runtime::instance();
    runtime.requireInit();
    // Failure atomicity: an allocation or upload failure (injected or
    // organic) may leave some chunks allocated or partially written.
    // Dropping every chunk restores the invariant "host data is the
    // truth" — the next access re-allocates and re-uploads from the
    // still-valid host copy, and the caller sees a typed exception.
    try {
      if (chunks_.empty()) {
        allocateChunks();
        upload();
        hostDirty_ = false;
        return;
      }
      if (hostDirty_) {
        upload();
        hostDirty_ = false;
      }
    } catch (ocl::ClError& e) {
      dropChunks();
      hostDirty_ = true;
      devicesDirty_ = false;
      e.prependContext("vector upload of " + std::to_string(host_.size()) +
                       " element(s)");
      throw;
    }
  }

  const Chunk& chunkForDevice(std::size_t deviceIndex) const override {
    for (const Chunk& chunk : chunks_) {
      if (chunk.deviceIndex == deviceIndex) {
        return chunk;
      }
    }
    throw common::InvalidArgument(
        "vector has no data on device " + std::to_string(deviceIndex) +
        " (distribution: " + distributionName(dist_) + ")");
  }

  const std::vector<Chunk>& chunks() const override { return chunks_; }

  std::size_t elementSize() const override { return sizeof(T); }

  void markDevicesModified() override {
    COMMON_EXPECTS(!chunks_.empty(),
                   "dataOnDevicesModified: vector has no device data");
    devicesDirty_ = true;
  }

  void markHostModified() {
    hostDirty_ = true;
    devicesDirty_ = false;
  }

  bool devicesDirty() const { return devicesDirty_; }
  bool hostDirty() const { return hostDirty_; }
  bool hasDeviceData() const { return !chunks_.empty(); }

  std::string elementTypeName() const override { return typeName<T>(); }

  ocl::Event readyEventOn(std::size_t deviceIndex) const override {
    for (const Chunk& chunk : chunks_) {
      if (chunk.deviceIndex == deviceIndex) {
        return chunk.ready;
      }
    }
    return ocl::Event();
  }

  void recordEventOn(std::size_t deviceIndex,
                     const ocl::Event& event) override {
    for (Chunk& chunk : chunks_) {
      if (chunk.deviceIndex == deviceIndex) {
        chunk.ready = event;
        chunk.pieces.clear();
        return;
      }
    }
  }

  /// Moves the split-upload piece events of the device-`deviceIndex`
  /// chunk out (empty when the last upload was not split). Consuming
  /// skeletons call this once and pipeline their sub-launches against
  /// the pieces; afterwards only Chunk::ready remains.
  std::vector<std::pair<std::size_t, ocl::Event>> takeUploadPieces(
      std::size_t deviceIndex) override {
    for (Chunk& chunk : chunks_) {
      if (chunk.deviceIndex == deviceIndex) {
        return std::move(chunk.pieces);
      }
    }
    return {};
  }

  /// Dependency list for commands reading `chunk`: its ready event when
  /// it has one, nothing otherwise.
  static std::vector<ocl::Event> depsOf(const Chunk& chunk) {
    std::vector<ocl::Event> deps;
    if (chunk.ready.valid()) {
      deps.push_back(chunk.ready);
    }
    return deps;
  }

  /// Adopts an existing device buffer as this vector's single-device
  /// contents (used by Reduce/Scan to wrap their result buffers without
  /// a round-trip through the host). `ready` is the event of the command
  /// that produced the buffer contents; the eventual download depends on
  /// it instead of the producer having to finish() first.
  void adoptDeviceBuffer(ocl::Buffer buffer, std::size_t count,
                         std::size_t deviceIndex,
                         ocl::Event ready = ocl::Event()) {
    host_.assign(count, T{});
    clearPending();
    Chunk chunk;
    chunk.buffer = std::move(buffer);
    chunk.deviceIndex = deviceIndex;
    chunk.offset = 0;
    chunk.count = count;
    chunk.ready = std::move(ready);
    chunks_ = {std::move(chunk)};
    dist_ = Distribution::Single;
    singleDevice_ = deviceIndex;
    hostDirty_ = false;
    devicesDirty_ = true;
  }

  void adoptDeviceBufferBase(ocl::Buffer buffer, std::size_t count,
                             std::size_t deviceIndex,
                             ocl::Event ready) override {
    adoptDeviceBuffer(std::move(buffer), count, deviceIndex,
                      std::move(ready));
  }

  /// Allocates device chunks for an *output* vector mirroring the chunk
  /// geometry of an input (same distribution and size, fresh buffers).
  /// The input's element type may differ (Map<Tin, Tout>). Mirrors the
  /// input's *actual* chunks rather than re-partitioning: under measured
  /// weights a fresh block partition could disagree with the one the
  /// input was uploaded with, and element-wise kernels need identical
  /// geometry on both sides.
  void allocateLikeBase(const VectorStateBase& input) override {
    dropChunks();
    dist_ = input.distribution();
    singleDevice_ = input.singleDeviceIndex();
    host_.resize(input.size());
    allocateLayout(input.chunks());
    hostDirty_ = false;
  }

  template <typename U>
  void allocateLike(const VectorState<U>& input) {
    allocateLikeBase(input);
  }

  void allocateBlockLayoutBase(const std::vector<Chunk>& layout) override {
    dropChunks();
    dist_ = Distribution::Block;
    singleDevice_ = 0;
    std::size_t total = 0;
    for (const Chunk& chunk : layout) {
      total += chunk.count;
    }
    host_.resize(total);
    allocateLayout(layout);
    hostDirty_ = false;
  }

  /// True when this vector's device chunks have exactly the given
  /// geometry (device, offset, count per chunk, same order).
  bool sameLayout(const std::vector<Chunk>& layout) const {
    if (chunks_.size() != layout.size()) {
      return false;
    }
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (chunks_[i].deviceIndex != layout[i].deviceIndex ||
          chunks_[i].offset != layout[i].offset ||
          chunks_[i].count != layout[i].count) {
        return false;
      }
    }
    return true;
  }

  /// Ensures this vector's device data has distribution `dist` and the
  /// exact chunk geometry of `layout`, re-staging through the host when
  /// it does not. Zip aligns its right operand with this: two block
  /// partitions made at different times may disagree under measured
  /// weights (and two single distributions may sit on different
  /// devices), and element-wise kernels need identical geometry.
  void matchLayout(Distribution dist, std::size_t singleDevice,
                   const std::vector<Chunk>& layout) override {
    forcePending();
    if (!chunks_.empty() && dist_ == dist &&
        (dist != Distribution::Single || singleDevice_ == singleDevice) &&
        sameLayout(layout)) {
      ensureOnDevices();
      return;
    }
    trace::ScopedHostSpan span(trace::HostKind::Redistribute,
                               "vector.redistribute");
    ensureOnHost();
    dropChunks();
    dist_ = dist;
    singleDevice_ = singleDevice;
    try {
      allocateLayout(layout);
      upload();
      hostDirty_ = false;
    } catch (ocl::ClError& e) {
      // Same failure atomicity as ensureOnDevices: the still-valid host
      // copy stays the truth, the next access re-stages from it.
      dropChunks();
      hostDirty_ = true;
      devicesDirty_ = false;
      e.prependContext("vector layout alignment of " +
                       std::to_string(host_.size()) + " element(s)");
      throw;
    }
  }

  void ensureOnHost() {
    forcePending();
    if (!devicesDirty_ || chunks_.empty()) {
      return;
    }
    trace::ScopedHostSpan span(trace::HostKind::Transfer, "vector.download",
                               trace::kNoDevice, host_.size() * sizeof(T));
    auto& runtime = Runtime::instance();
    // Downloads are transactional: they land in a staging buffer that is
    // committed only once every transfer has finished. A failed or
    // truncated read (injected faults, device loss) therefore leaves the
    // previous host data — e.g. the pre-redistribute values — intact.
    std::vector<T> staging(host_.size());
    // Enqueue every download non-blocking so transfers from different
    // devices overlap on their own PCIe links; wait on all at the end.
    std::vector<ocl::Event> pending;
    try {
      switch (dist_) {
        case Distribution::Single:
        case Distribution::Block:
          for (std::size_t idx :
               runtime.chunkVisitOrder(chunks_.size())) {
            const Chunk& chunk = chunks_[idx];
            if (chunk.count == 0) continue;
            pending.push_back(
                runtime.queue(chunk.deviceIndex)
                    .enqueueReadBuffer(chunk.buffer, 0,
                                       chunk.count * sizeof(T),
                                       staging.data() + chunk.offset,
                                       /*blocking=*/false, depsOf(chunk)));
          }
          break;
        case Distribution::Copy:
          // All copies are equal by definition; read the first.
          if (!host_.empty()) {
            const Chunk& chunk = chunks_.front();
            pending.push_back(
                runtime.queue(chunk.deviceIndex)
                    .enqueueReadBuffer(chunk.buffer, 0,
                                       chunk.count * sizeof(T),
                                       staging.data(),
                                       /*blocking=*/false, depsOf(chunk)));
          }
          break;
      }
    } catch (ocl::ClError& e) {
      e.prependContext("vector download of " +
                       std::to_string(host_.size()) + " element(s)");
      throw;
    }
    for (const ocl::Event& event : pending) {
      event.wait();
    }
    host_ = std::move(staging);
    devicesDirty_ = false;
  }

private:
  /// Minimum bytes per upload piece. Every piece pays the fixed PCIe
  /// latency (~8us) on top of its bandwidth time, so pieces must be
  /// large enough to keep that tax a small fraction (1 MiB at ~5 GB/s
  /// is ~200us of bandwidth time, making the latency < 5%); smaller
  /// uploads transfer in one piece and overlap nothing.
  static constexpr std::size_t kSplitMinBytes = 1024 * 1024;

  /// One chunk descriptor per device, sized by the runtime's current
  /// block weights (detail/partition.h). With even weights — the default
  /// — this is the paper's even split; on heterogeneous platforms or
  /// under measured feedback, faster devices receive proportionally
  /// larger contiguous parts. Devices whose share rounds to zero still
  /// get a (count == 0) chunk so chunk index == device index holds; no
  /// device command is ever enqueued for those.
  std::vector<Chunk> blockLayout(std::size_t devices) const {
    const std::vector<std::size_t> counts =
        Runtime::instance().blockPartition(host_.size());
    COMMON_CHECK(counts.size() == devices);
    std::vector<Chunk> layout;
    std::size_t offset = 0;
    for (std::size_t d = 0; d < devices; ++d) {
      Chunk chunk;
      chunk.deviceIndex = d;
      chunk.offset = offset;
      chunk.count = counts[d];
      offset += chunk.count;
      layout.push_back(chunk);
    }
    return layout;
  }

  /// Fresh buffers with exactly the given chunk geometry (used when the
  /// geometry must mirror another vector's instead of being computed
  /// from the current distribution/weights).
  void allocateLayout(const std::vector<Chunk>& layout) {
    auto& runtime = Runtime::instance();
    chunks_.clear();
    for (const Chunk& reference : layout) {
      Chunk chunk;
      chunk.deviceIndex = reference.deviceIndex;
      chunk.offset = reference.offset;
      chunk.count = reference.count;
      chunk.buffer = runtime.context().createBuffer(
          runtime.devices()[chunk.deviceIndex],
          std::max<std::size_t>(1, chunk.count * sizeof(T)));
      chunks_.push_back(std::move(chunk));
    }
  }

  void allocateChunks() {
    auto& runtime = Runtime::instance();
    const std::size_t devices = runtime.deviceCount();
    const std::size_t n = host_.size();
    switch (dist_) {
      case Distribution::Single: {
        Chunk chunk;
        chunk.deviceIndex = singleDevice_;
        chunk.offset = 0;
        chunk.count = n;
        chunk.buffer = runtime.context().createBuffer(
            runtime.devices()[singleDevice_],
            std::max<std::size_t>(1, n * sizeof(T)));
        chunks_ = {std::move(chunk)};
        break;
      }
      case Distribution::Copy: {
        chunks_.clear();
        for (std::size_t d = 0; d < devices; ++d) {
          Chunk chunk;
          chunk.deviceIndex = d;
          chunk.offset = 0;
          chunk.count = n;
          chunk.buffer = runtime.context().createBuffer(
              runtime.devices()[d], std::max<std::size_t>(1, n * sizeof(T)));
          chunks_.push_back(std::move(chunk));
        }
        break;
      }
      case Distribution::Block: {
        chunks_ = blockLayout(devices);
        for (Chunk& chunk : chunks_) {
          chunk.buffer = runtime.context().createBuffer(
              runtime.devices()[chunk.deviceIndex],
              std::max<std::size_t>(1, chunk.count * sizeof(T)));
        }
        break;
      }
    }
  }

  /// Uploads every stale chunk. Large chunks are split into
  /// Runtime::transferPieces() back-to-back writes so a consumer can
  /// start computing on piece i while piece i+1 still streams over PCIe
  /// (double buffering); the per-piece events land in Chunk::pieces and
  /// the last one becomes Chunk::ready. The H2D engine runs the pieces
  /// FIFO, so total transfer time is unchanged.
  void upload() {
    trace::ScopedHostSpan span(trace::HostKind::Transfer, "vector.upload",
                               trace::kNoDevice, host_.size() * sizeof(T));
    auto& runtime = Runtime::instance();
    // Chunks live on different devices and cover disjoint ranges, so any
    // visit order is legal; under schedule fuzzing the order is shuffled.
    for (std::size_t idx : runtime.chunkVisitOrder(chunks_.size())) {
      Chunk& chunk = chunks_[idx];
      if (chunk.count == 0) continue;
      auto& queue = runtime.queue(chunk.deviceIndex);
      chunk.pieces.clear();
      const std::size_t bytes = chunk.count * sizeof(T);
      // Every piece must stay >= kSplitMinBytes: each one pays the fixed
      // PCIe latency, so small pieces cost more than overlap wins.
      const std::size_t pieces = std::min(
          runtime.transferPieces(),
          std::min(chunk.count, bytes / kSplitMinBytes));
      if (pieces <= 1) {
        chunk.ready = queue.enqueueWriteBuffer(
            chunk.buffer, 0, bytes, host_.data() + chunk.offset);
        continue;
      }
      std::size_t begin = 0;
      for (std::size_t p = 0; p < pieces; ++p) {
        const std::size_t end =
            p + 1 == pieces ? chunk.count : (p + 1) * chunk.count / pieces;
        if (end == begin) continue;
        ocl::Event event = queue.enqueueWriteBuffer(
            chunk.buffer, begin * sizeof(T), (end - begin) * sizeof(T),
            host_.data() + chunk.offset + begin);
        chunk.pieces.emplace_back(end, event);
        chunk.ready = event;
        begin = end;
      }
    }
  }

  void dropChunks() { chunks_.clear(); }

  std::vector<T> host_;
  std::vector<Chunk> chunks_;
  Distribution dist_ = Distribution::Single;
  std::size_t singleDevice_ = 0;
  bool hostDirty_ = true;     // host copy newer than device copies
  bool devicesDirty_ = false; // device copies newer than host
};

} // namespace detail

template <typename T>
class Vector {
public:
  using value_type = T;

  Vector() : state_(std::make_shared<detail::VectorState<T>>()) {}

  explicit Vector(std::size_t n)
      : state_(std::make_shared<detail::VectorState<T>>(std::vector<T>(n))) {}

  Vector(std::size_t n, const T& value)
      : state_(std::make_shared<detail::VectorState<T>>(
            std::vector<T>(n, value))) {}

  /// Paper Listing 1: Vector<float> A(a_ptr, ARRAY_SIZE);
  Vector(const T* data, std::size_t n)
      : state_(std::make_shared<detail::VectorState<T>>(
            std::vector<T>(data, data + n))) {}

  explicit Vector(std::vector<T> data)
      : state_(std::make_shared<detail::VectorState<T>>(std::move(data))) {}

  template <typename InputIt>
  Vector(InputIt first, InputIt last)
      : state_(std::make_shared<detail::VectorState<T>>(
            std::vector<T>(first, last))) {}

  // --- size & host element access ---------------------------------------

  std::size_t size() const { return state_->size(); }
  bool empty() const { return size() == 0; }
  void resize(std::size_t n) { state_->resizeHost(n); }

  /// Reading host access: downloads first when devices hold newer data.
  const T& operator[](std::size_t i) const {
    return state_->hostForRead()[i];
  }
  /// Writing host access: marks the host copy as the newest.
  T& operator[](std::size_t i) { return state_->hostForWrite()[i]; }

  /// Whole-vector host views.
  const std::vector<T>& hostData() const { return state_->hostForRead(); }
  std::vector<T>& hostDataForWriting() { return state_->hostForWrite(); }

  /// Sets every element to `value` (cheaper than writing through
  /// hostDataForWriting(): no download of stale device data happens).
  void fill(const T& value) { state_->fillHost(value); }

  auto begin() const { return state_->hostForRead().begin(); }
  auto end() const { return state_->hostForRead().end(); }

  // --- distribution & synchronization ------------------------------------

  /// Forces a deferred producer first: the result's distribution is
  /// decided at evaluation (it follows the input layout), so answering
  /// from the unevaluated state would report the default.
  Distribution distribution() const {
    state_->forcePending();
    return state_->distribution();
  }

  void setDistribution(Distribution dist, std::size_t singleDevice = 0) {
    state_->setDistribution(dist, singleDevice);
  }

  /// Redistribution with a combine operator (copy -> block), e.g.
  ///   c.setDistribution(Distribution::Block, addSource);
  void setDistribution(Distribution dist, const std::string& combineSource) {
    COMMON_EXPECTS(dist == Distribution::Block,
                   "combine redistribution targets the block distribution");
    state_->setDistributionCombine(combineSource);
  }

  /// Paper Sec. IV-B: after a skeleton that updates a vector by
  /// side-effect (through Arguments), tell SkelCL the device data is
  /// newer than the host copy.
  void dataOnDevicesModified() {
    state_->forcePending();
    state_->markDevicesModified();
  }
  void dataOnHostModified() { state_->markHostModified(); }

  /// Deep copy (the copy constructor shares state).
  Vector clone() const {
    return Vector(state_->hostForRead());
  }

  detail::VectorState<T>& state() const { return *state_; }
  std::shared_ptr<detail::VectorStateBase> stateHandle() const {
    return state_;
  }

private:
  std::shared_ptr<detail::VectorState<T>> state_;
};

} // namespace skelcl
