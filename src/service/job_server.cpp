#include "service/service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/env.h"
#include "ocl/ocl.h"
#include "skelcl/detail/scheduler.h"
#include "trace/load_monitor.h"
#include "trace/recorder.h"

namespace skelcl::service {

namespace {
constexpr std::size_t kNone = ~std::size_t(0);
} // namespace

Policy policyFromString(const std::string& name) {
  if (name == "fifo") {
    return Policy::Fifo;
  }
  if (name == "fair" || name == "fair-share" || name == "fairshare") {
    return Policy::FairShare;
  }
  if (name == "priority") {
    return Policy::Priority;
  }
  throw common::InvalidArgument(
      "unknown service policy \"" + name +
      "\" (expected fifo, fair, or priority)");
}

const char* policyName(Policy policy) noexcept {
  switch (policy) {
    case Policy::Fifo: return "fifo";
    case Policy::FairShare: return "fair";
    case Policy::Priority: return "priority";
  }
  return "?";
}

ServiceConfig ServiceConfig::fromEnv() {
  ServiceConfig config;
  config.policy =
      policyFromString(common::envStr("SKELCL_SERVICE_POLICY", "fifo"));
  const long long cap = common::envInt("SKELCL_SERVICE_QUEUE_CAP", 64);
  COMMON_EXPECTS(cap >= 1, "SKELCL_SERVICE_QUEUE_CAP must be >= 1");
  config.queueCap = std::size_t(cap);
  config.batching = common::envFlag("SKELCL_SERVICE_BATCH", true);
  const long long limit =
      common::envInt("SKELCL_SERVICE_BATCH_LIMIT", 8);
  COMMON_EXPECTS(limit >= 1, "SKELCL_SERVICE_BATCH_LIMIT must be >= 1");
  config.batchLimit = std::size_t(limit);
  const long long threads = common::envInt("SKELCL_SERVICE_THREADS", 0);
  COMMON_EXPECTS(threads >= 0, "SKELCL_SERVICE_THREADS must be >= 0");
  config.threads = std::size_t(threads);
  return config;
}

ServiceOverload::ServiceOverload(const std::string& tenant,
                                 std::size_t queued, std::size_t cap)
    : common::Error("service overload: tenant \"" + tenant + "\" has " +
                    std::to_string(queued) + " job(s) queued (cap " +
                    std::to_string(cap) + "); retry after the backlog "
                    "drains"),
      tenant_(tenant), queued_(queued), cap_(cap) {}

// --- JobHandle -----------------------------------------------------------

void JobHandle::wait() const {
  COMMON_EXPECTS(state_ != nullptr, "wait on an empty JobHandle");
  std::unique_lock lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool JobHandle::done() const {
  COMMON_EXPECTS(state_ != nullptr, "done on an empty JobHandle");
  std::lock_guard lock(state_->mutex);
  return state_->done;
}

bool JobHandle::failed() const {
  COMMON_EXPECTS(state_ != nullptr, "failed on an empty JobHandle");
  std::lock_guard lock(state_->mutex);
  return state_->error != nullptr;
}

void JobHandle::rethrow() const {
  COMMON_EXPECTS(state_ != nullptr, "rethrow on an empty JobHandle");
  std::exception_ptr error;
  {
    std::lock_guard lock(state_->mutex);
    error = state_->error;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

JobStats JobHandle::stats() const {
  COMMON_EXPECTS(state_ != nullptr, "stats on an empty JobHandle");
  std::lock_guard lock(state_->mutex);
  return state_->stats;
}

// --- Session -------------------------------------------------------------

JobHandle Session::submit(Job job) {
  return server_->submit(index_, std::move(job));
}

// --- JobServer -----------------------------------------------------------

JobServer::JobServer(ServiceConfig config) : config_(config) {
  COMMON_EXPECTS(config_.queueCap >= 1, "queueCap must be >= 1");
  COMMON_EXPECTS(config_.batchLimit >= 1, "batchLimit must be >= 1");
}

JobServer::~JobServer() {
  try {
    stop();
  } catch (...) { // NOLINT(bugprone-empty-catch)
  }
}

Session& JobServer::openSession(const std::string& tenant, double weight,
                                int priority) {
  COMMON_EXPECTS(weight > 0.0, "session weight must be > 0");
  std::lock_guard lock(lock_);
  auto row = std::make_unique<Tenant>();
  row->monitorId = trace::LoadMonitor::instance().registerTenant(tenant);
  row->session.reset(
      new Session(this, tenants_.size(), tenant, weight, priority));
  tenants_.push_back(std::move(row));
  return *tenants_.back()->session;
}

JobHandle JobServer::submit(std::size_t tenantIndex, Job job) {
  COMMON_EXPECTS(job.work != nullptr, "job without a work() callback");
  std::unique_lock lock(lock_);
  Tenant& tenant = *tenants_[tenantIndex];
  if (tenant.queue.size() >= config_.queueCap) {
    ++tenant.rejected;
    throw ServiceOverload(tenant.session->tenant(), tenant.queue.size(),
                          config_.queueCap);
  }
  PendingJob pending;
  pending.state = std::make_shared<detail_service::JobState>();
  const std::uint64_t submitNs = ocl::hostTimeNs();
  pending.state->stats.submitNs = submitNs;
  pending.state->stats.readyNs = std::max(submitNs, job.arrivalNs);
  pending.readyNs = pending.state->stats.readyNs;
  pending.job = std::move(job);
  pending.seq = nextSeq_++;
  pending.owner = &tenant;
  ++tenant.submitted;
  ++totalPending_;
  JobHandle handle(pending.state);
  tenant.queue.push_back(std::move(pending));
  lock.unlock();
  workCv_.notify_all();
  return handle;
}

bool JobServer::eligible(const Tenant& tenant, bool honorArrivals,
                         std::uint64_t now) const {
  if (tenant.queue.empty()) {
    return false;
  }
  return !honorArrivals || tenant.queue.front().readyNs <= now;
}

std::size_t JobServer::pickTenant(bool honorArrivals,
                                  std::uint64_t now) const {
  std::size_t best = kNone;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const Tenant& tenant = *tenants_[t];
    if (!eligible(tenant, honorArrivals, now)) {
      continue;
    }
    if (best == kNone) {
      best = t;
      continue;
    }
    const Tenant& leader = *tenants_[best];
    const std::uint64_t seq = tenant.queue.front().seq;
    const std::uint64_t leaderSeq = leader.queue.front().seq;
    switch (config_.policy) {
      case Policy::Fifo:
        if (seq < leaderSeq) {
          best = t;
        }
        break;
      case Policy::FairShare:
        // Least accumulated weighted device time first; submission
        // order breaks ties deterministically.
        if (tenant.vruntime < leader.vruntime ||
            (tenant.vruntime == leader.vruntime && seq < leaderSeq)) {
          best = t;
        }
        break;
      case Policy::Priority:
        if (tenant.session->priority() > leader.session->priority() ||
            (tenant.session->priority() == leader.session->priority() &&
             seq < leaderSeq)) {
          best = t;
        }
        break;
    }
  }
  return best;
}

std::vector<JobServer::PendingJob>
JobServer::pickBatch(bool honorArrivals, std::uint64_t now,
                     std::uint64_t* minReadyNs) {
  *minReadyNs = std::numeric_limits<std::uint64_t>::max();
  const std::size_t victim = pickTenant(honorArrivals, now);
  std::vector<PendingJob> batch;
  if (victim == kNone) {
    for (const auto& tenant : tenants_) {
      if (!tenant->queue.empty()) {
        *minReadyNs =
            std::min(*minReadyNs, tenant->queue.front().readyNs);
      }
    }
    return batch;
  }
  batch.push_back(std::move(tenants_[victim]->queue.front()));
  tenants_[victim]->queue.pop_front();
  // Copy, not a reference: push_back below may reallocate the batch.
  const std::string key = batch.front().job.programKey;
  if (config_.batching && !key.empty()) {
    // Coalesce same-program jobs across tenants, taking only queue
    // fronts (per-session FIFO is preserved), round-robin from the
    // victim so no tenant monopolizes the batch.
    bool took = true;
    while (batch.size() < config_.batchLimit && took) {
      took = false;
      for (std::size_t k = 0; k < tenants_.size(); ++k) {
        Tenant& tenant = *tenants_[(victim + k) % tenants_.size()];
        while (batch.size() < config_.batchLimit &&
               eligible(tenant, honorArrivals, now) &&
               tenant.queue.front().job.programKey == key) {
          batch.push_back(std::move(tenant.queue.front()));
          tenant.queue.pop_front();
          took = true;
        }
      }
    }
  }
  totalPending_ -= batch.size();
  return batch;
}

void JobServer::finishJob(PendingJob& job, std::exception_ptr error) {
  detail_service::JobState& state = *job.state;
  {
    std::lock_guard lock(state.mutex);
    state.error = std::move(error);
    state.done = true;
  }
  state.cv.notify_all();
}

void JobServer::executeBatch(std::vector<PendingJob>& batch) {
  auto& monitor = trace::LoadMonitor::instance();

  // Runs `fn` with retirements charged to the job's tenant, folding the
  // tenant-total delta into the job's own stats (batch phases of one
  // tenant's jobs interleave, so per-job numbers must be deltas).
  auto charged = [&](PendingJob& job, auto&& fn) {
    const std::size_t id = job.owner->monitorId;
    const trace::TenantLoad before = monitor.tenantLoad(id);
    monitor.beginTenantScope(id);
    try {
      fn();
    } catch (...) {
      monitor.endTenantScope();
      const trace::TenantLoad after = monitor.tenantLoad(id);
      job.state->stats.deviceCycles +=
          after.deviceCycles - before.deviceCycles;
      job.state->stats.bytesMoved += after.bytesMoved - before.bytesMoved;
      throw;
    }
    monitor.endTenantScope();
    const trace::TenantLoad after = monitor.tenantLoad(id);
    job.state->stats.deviceCycles +=
        after.deviceCycles - before.deviceCycles;
    job.state->stats.bytesMoved += after.bytesMoved - before.bytesMoved;
  };
  auto fail = [](PendingJob& job) {
    job.failed = true;
    job.error = std::current_exception();
  };

  // The scope adopts this thread as the task-graph registry owner and
  // suppresses consumption-point drains: the server forces each job's
  // roots itself, in batch order, so the enqueue sequence — and the
  // tenant each command is charged to — is exact. Construction throws
  // if another thread still has pending non-service jobs; that error
  // fails the whole batch instead of crashing the dispatcher.
  std::unique_ptr<detail::Scheduler::ExternalDispatchScope> dispatchScope;
  try {
    dispatchScope =
        std::make_unique<detail::Scheduler::ExternalDispatchScope>();
  } catch (...) {
    for (PendingJob& job : batch) {
      fail(job);
    }
  }

  if (dispatchScope != nullptr) {
    // Phase 1 — register: every job's skeleton calls build their lazy
    // DAGs (concrete inputs upload here, under the tenant's scope).
    for (PendingJob& job : batch) {
      job.state->stats.dispatchNs = ocl::hostTimeNs();
      try {
        charged(job, [&] {
          JobContext ctx;
          job.job.work(ctx);
          job.roots = std::move(ctx.roots_);
        });
      } catch (...) {
        fail(job);
      }
    }
    // Phase 2 — dispatch: force each job's roots in batch order. All
    // jobs' commands sit in the per-device queues before any blocking
    // wait, so independent jobs pipeline exactly as a scheduler drain
    // would — but with per-tenant attribution.
    for (PendingJob& job : batch) {
      if (job.failed) {
        continue;
      }
      try {
        charged(job, [&] {
          for (const auto& root : job.roots) {
            root->forcePending();
          }
        });
      } catch (...) {
        fail(job);
        for (const auto& root : job.roots) {
          root->poisonPending(job.error);
        }
      }
    }
    // Phase 3 — consume: the blocking reads, in batch order.
    for (PendingJob& job : batch) {
      if (!job.failed && job.job.consume != nullptr) {
        try {
          charged(job, [&] { job.job.consume(); });
        } catch (...) {
          fail(job);
        }
      }
    }
  }

  for (PendingJob& job : batch) {
    JobStats& stats = job.state->stats;
    stats.completeNs = ocl::hostTimeNs();
    if (stats.dispatchNs == 0) {
      stats.dispatchNs = stats.completeNs; // batch failed before phase 1
    }
    monitor.noteTenantJob(job.owner->monitorId, stats.queueWaitNs());
    if (trace::Recorder::enabled()) {
      auto& recorder = trace::Recorder::instance();
      const std::string& name = job.owner->session->tenant();
      recorder.recordHostSpan(trace::HostKind::TenantJob, name,
                              trace::kNoDevice, stats.dispatchNs,
                              stats.completeNs, stats.queueWaitNs());
      if (stats.deviceCycles > 0) {
        recorder.bumpCounter("tenant." + name + ".cycles",
                             trace::kNoDevice, trace::now(),
                             stats.deviceCycles);
      }
      if (stats.bytesMoved > 0) {
        recorder.bumpCounter("tenant." + name + ".bytes", trace::kNoDevice,
                             trace::now(), stats.bytesMoved);
      }
    }
  }

  {
    std::lock_guard lock(lock_);
    ++serverStats_.batches;
    serverStats_.jobsExecuted += batch.size();
    serverStats_.maxBatch =
        std::max<std::uint64_t>(serverStats_.maxBatch, batch.size());
    if (batch.size() > 1) {
      serverStats_.coalescedJobs += batch.size();
    }
    for (PendingJob& job : batch) {
      ++job.owner->completed;
      if (job.failed) {
        ++job.owner->failed;
      }
      job.owner->vruntime += double(job.state->stats.deviceCycles) /
                             job.owner->session->weight();
    }
  }

  // Publish completion last, so a woken waiter sees consistent server
  // accounting.
  for (PendingJob& job : batch) {
    finishJob(job, job.error);
  }
}

void JobServer::pump() {
  std::unique_lock lock(lock_);
  COMMON_EXPECTS(!running_,
                 "JobServer::pump while the dispatcher thread runs");
  while (totalPending_ > 0) {
    std::uint64_t minReadyNs = 0;
    std::vector<PendingJob> batch =
        pickBatch(/*honorArrivals=*/true, ocl::hostTimeNs(), &minReadyNs);
    if (batch.empty()) {
      if (minReadyNs == std::numeric_limits<std::uint64_t>::max()) {
        break; // defensive: nothing queued after all
      }
      // Event-driven simulation: everything queued arrives in the
      // future, so idle the virtual host up to the next arrival.
      ocl::syncHostTimeToNs(minReadyNs);
      continue;
    }
    lock.unlock();
    executeBatch(batch);
    lock.lock();
  }
}

void JobServer::dispatcherLoop() {
  std::unique_lock lock(lock_);
  while (true) {
    workCv_.wait(lock, [&] { return stopRequested_ || totalPending_ > 0; });
    if (totalPending_ == 0) {
      if (stopRequested_) {
        return;
      }
      continue;
    }
    std::uint64_t minReadyNs = 0;
    // The serving mode treats every queued job as arrived (clients are
    // the arrival process); arrivalNs is a pump()-mode knob.
    std::vector<PendingJob> batch =
        pickBatch(/*honorArrivals=*/false, 0, &minReadyNs);
    if (batch.empty()) {
      continue;
    }
    lock.unlock();
    executeBatch(batch);
    lock.lock();
  }
}

void JobServer::start() {
  std::lock_guard lock(lock_);
  COMMON_EXPECTS(!running_, "JobServer::start: already running");
  stopRequested_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

void JobServer::stop() {
  {
    std::lock_guard lock(lock_);
    if (!running_) {
      return;
    }
    stopRequested_ = true;
  }
  workCv_.notify_all();
  dispatcher_.join();
  std::lock_guard lock(lock_);
  running_ = false;
  stopRequested_ = false;
}

std::vector<JobServer::TenantStats> JobServer::tenantStats() const {
  auto& monitor = trace::LoadMonitor::instance();
  std::lock_guard lock(lock_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    TenantStats row;
    row.tenant = tenant->session->tenant();
    row.weight = tenant->session->weight();
    row.priority = tenant->session->priority();
    row.submitted = tenant->submitted;
    row.completed = tenant->completed;
    row.failed = tenant->failed;
    row.rejected = tenant->rejected;
    row.vruntime = tenant->vruntime;
    const trace::TenantLoad load = monitor.tenantLoad(tenant->monitorId);
    row.deviceCycles = load.deviceCycles;
    row.bytesMoved = load.bytesMoved;
    row.queueWaitNs = load.queueWaitNs;
    out.push_back(std::move(row));
  }
  return out;
}

JobServer::ServerStats JobServer::serverStats() const {
  std::lock_guard lock(lock_);
  return serverStats_;
}

} // namespace skelcl::service
