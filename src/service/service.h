// Multi-tenant skeleton job service (ROADMAP: "a job-server that
// multiplexes many tenants onto the shared simulated devices").
//
// The paper's SkelCL is a library one main() links against; this layer
// turns the runtime into an in-process server. A JobServer owns the
// SkelCL runtime and accepts skeleton *jobs* from N client Sessions —
// one session per tenant, submissions allowed from any thread. Jobs
// land in per-tenant bounded queues (admission control: a full queue
// rejects with a typed ServiceOverload instead of letting one tenant
// buffer unbounded work), a pluggable policy picks the next job (FIFO /
// weighted fair-share by accumulated device-cycles / strict priority),
// and same-program jobs are coalesced into one batch so launch and
// program-load overheads amortize *across* tenants — the kernel cache's
// hit win becomes cross-tenant.
//
// Execution model: the simulated devices share one virtual clock, so
// job execution is funneled through a single dispatcher — either the
// server's own thread (start()/stop()) or the caller's (pump(), the
// deterministic mode tests and benches use). Client threads only
// enqueue job descriptors; every skeleton call of every tenant runs on
// the dispatcher, which satisfies the task-graph scheduler's ownership
// contract (scheduler.h). Each job executes under a LoadMonitor tenant
// scope, so device-cycles and bytes moved are attributed exactly; the
// per-tenant totals feed fair-share scheduling, tenantStats(), and the
// skeltrace tenant report (HostKind::TenantJob spans plus
// "tenant.<name>.cycles/.bytes" counters).
//
// Failure isolation: a job that throws — including injected
// DeviceLost / AllocFailure faults — fails only its own JobHandle (and
// poisons its own output vectors); concurrent tenants' jobs keep their
// solo-run results bit-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "skelcl/vector.h"

namespace skelcl::service {

/// How the dispatcher picks the next job among non-empty tenant queues.
enum class Policy : std::uint8_t {
  Fifo = 0,      // global submission order
  FairShare = 1, // min accumulated device-cycles / weight first
  Priority = 2,  // highest session priority first (job granularity)
};

/// Parses "fifo" | "fair" (also "fair-share"/"fairshare") | "priority".
/// Throws common::InvalidArgument on anything else.
Policy policyFromString(const std::string& name);
const char* policyName(Policy policy) noexcept;

struct ServiceConfig {
  Policy policy = Policy::Fifo;
  std::size_t queueCap = 64;  // pending jobs per tenant before overload
  bool batching = true;       // coalesce same-programKey jobs
  std::size_t batchLimit = 8; // jobs per coalesced batch
  std::size_t threads = 0;    // client threads (skelserve); 0 = #tenants

  /// SKELCL_SERVICE_POLICY / SKELCL_SERVICE_QUEUE_CAP /
  /// SKELCL_SERVICE_BATCH / SKELCL_SERVICE_BATCH_LIMIT /
  /// SKELCL_SERVICE_THREADS, with the defaults above.
  static ServiceConfig fromEnv();
};

/// Admission-control rejection: the tenant's queue is full. Typed so
/// clients can distinguish backpressure (retry later) from job failure.
class ServiceOverload : public common::Error {
public:
  ServiceOverload(const std::string& tenant, std::size_t queued,
                  std::size_t cap);
  const std::string& tenant() const noexcept { return tenant_; }
  std::size_t queued() const noexcept { return queued_; }
  std::size_t cap() const noexcept { return cap_; }

private:
  std::string tenant_;
  std::size_t queued_;
  std::size_t cap_;
};

/// Handed to a job's work() callback; the job registers its result
/// vectors here so the server can force them (dispatch their skeleton
/// DAGs) in policy order and keep them alive until consume() runs.
class JobContext {
public:
  template <typename T> void defer(const Vector<T>& result) {
    roots_.push_back(result.stateHandle());
  }

private:
  friend class JobServer;
  std::vector<std::shared_ptr<detail::VectorStateBase>> roots_;
};

/// One unit of tenant work. work() makes the skeleton calls (they stay
/// lazy; register results via JobContext::defer) and consume() reads
/// the results (the blocking waits). Both run on the dispatcher.
/// `programKey` tags the generated program; batching coalesces jobs
/// with equal non-empty keys. `arrivalNs` (pump mode only) keeps the
/// job ineligible until the virtual clock reaches it — the offered-load
/// knob of the saturation bench.
struct Job {
  std::string programKey;
  std::uint64_t arrivalNs = 0;
  std::function<void(JobContext&)> work;
  std::function<void()> consume;
};

/// Virtual-time accounting of one job, valid once the handle is done.
struct JobStats {
  std::uint64_t submitNs = 0;   // virtual time of Session::submit
  std::uint64_t readyNs = 0;    // max(submitNs, arrivalNs)
  std::uint64_t dispatchNs = 0; // dispatcher started the job
  std::uint64_t completeNs = 0; // results consumed (or failure recorded)
  std::uint64_t deviceCycles = 0;
  std::uint64_t bytesMoved = 0;

  std::uint64_t queueWaitNs() const noexcept {
    return dispatchNs > readyNs ? dispatchNs - readyNs : 0;
  }
  std::uint64_t latencyNs() const noexcept {
    return completeNs > readyNs ? completeNs - readyNs : 0;
  }
};

namespace detail_service {
struct JobState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  JobStats stats;
};
} // namespace detail_service

/// Client-side view of one submitted job.
class JobHandle {
public:
  JobHandle() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  /// Blocks until the job completed or failed (returns immediately in
  /// pump mode, where completion precedes the handle's use).
  void wait() const;
  bool done() const;
  bool failed() const;
  /// Rethrows the job's failure as its original typed exception; no-op
  /// when the job succeeded.
  void rethrow() const;
  JobStats stats() const;

private:
  friend class JobServer;
  explicit JobHandle(std::shared_ptr<detail_service::JobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail_service::JobState> state_;
};

class JobServer;

/// One tenant's connection. Obtained from JobServer::openSession;
/// submit() may be called from any thread (thread-per-client).
class Session {
public:
  const std::string& tenant() const noexcept { return tenant_; }
  double weight() const noexcept { return weight_; }
  int priority() const noexcept { return priority_; }

  /// Enqueues a job; throws ServiceOverload when the tenant's queue is
  /// at the configured cap (admission control). Jobs of one session
  /// execute in submission order regardless of policy.
  JobHandle submit(Job job);

private:
  friend class JobServer;
  Session(JobServer* server, std::size_t index, std::string tenant,
          double weight, int priority)
      : server_(server), index_(index), tenant_(std::move(tenant)),
        weight_(weight), priority_(priority) {}
  JobServer* server_;
  std::size_t index_;
  std::string tenant_;
  double weight_;
  int priority_;
};

class JobServer {
public:
  explicit JobServer(ServiceConfig config = ServiceConfig::fromEnv());
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  const ServiceConfig& config() const noexcept { return config_; }

  /// Adds a tenant. `weight` scales fair-share (2.0 = entitled to twice
  /// the device-cycles of a 1.0 tenant); `priority` orders the Priority
  /// policy (higher first). Sessions stay valid for the server's life.
  Session& openSession(const std::string& tenant, double weight = 1.0,
                       int priority = 0);

  /// Starts the dispatcher thread (thread-per-client serving mode).
  void start();
  /// Drains every queued job, then joins the dispatcher. Idempotent.
  void stop();

  /// Deterministic mode: runs queued jobs to completion on the calling
  /// thread, honoring Job::arrivalNs by advancing the virtual clock
  /// when all queues are waiting on future arrivals. Not allowed while
  /// the dispatcher thread runs.
  void pump();

  /// Per-tenant service + accounting totals since the server started.
  struct TenantStats {
    std::string tenant;
    double weight = 1.0;
    int priority = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0; // includes failed (a job ran)
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;  // ServiceOverload backpressure
    std::uint64_t deviceCycles = 0;
    std::uint64_t bytesMoved = 0;
    std::uint64_t queueWaitNs = 0;
    double vruntime = 0; // deviceCycles / weight, the fair-share key
  };
  std::vector<TenantStats> tenantStats() const;

  /// What the dispatcher did: batches formed, jobs run, largest batch.
  struct ServerStats {
    std::uint64_t batches = 0;
    std::uint64_t jobsExecuted = 0;
    std::uint64_t maxBatch = 0;
    std::uint64_t coalescedJobs = 0; // jobs riding in a batch of > 1
  };
  ServerStats serverStats() const;

private:
  friend class Session;

  struct Tenant;
  struct PendingJob {
    Job job;
    std::shared_ptr<detail_service::JobState> state;
    std::uint64_t seq = 0;
    std::uint64_t readyNs = 0;
    Tenant* owner = nullptr; // stable: tenants are heap-allocated
    std::vector<std::shared_ptr<detail::VectorStateBase>> roots;
    std::exception_ptr error;
    bool failed = false;
  };
  struct Tenant {
    std::unique_ptr<Session> session;
    std::deque<PendingJob> queue;
    std::size_t monitorId = 0;
    double vruntime = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t rejected = 0;
  };

  JobHandle submit(std::size_t tenantIndex, Job job);
  /// Builds the next batch under lock_; empty when nothing is eligible
  /// (`minReadyNs` then holds the earliest future arrival, if any).
  std::vector<PendingJob> pickBatch(bool honorArrivals, std::uint64_t now,
                                    std::uint64_t* minReadyNs);
  std::size_t pickTenant(bool honorArrivals, std::uint64_t now) const;
  bool eligible(const Tenant& tenant, bool honorArrivals,
                std::uint64_t now) const;
  void executeBatch(std::vector<PendingJob>& batch);
  void finishJob(PendingJob& job, std::exception_ptr error);
  void dispatcherLoop();

  ServiceConfig config_;
  mutable std::mutex lock_;
  std::condition_variable workCv_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::uint64_t nextSeq_ = 0;
  std::size_t totalPending_ = 0;
  bool accepting_ = true;
  bool stopRequested_ = false;
  bool running_ = false;
  ServerStats serverStats_;
  std::thread dispatcher_;
};

} // namespace skelcl::service
