#include "ocl/program.h"

#include <cstring>

#include "clc/codegen.h"
#include "clc/diag.h"
#include "clc/opt.h"
#include "clc/serialize.h"
#include "ocl/fault.h"

namespace ocl {

namespace {

/// Parses `-cl-opt-level=N` out of an OpenCL-style build-options string.
/// Unknown tokens are ignored (real drivers do the same); a malformed
/// level value is a build error. Default is O2.
clc::OptLevel parseOptLevel(const std::string& options) {
  static const std::string kFlag = "-cl-opt-level=";
  std::size_t pos = 0;
  clc::OptLevel level = clc::OptLevel::O2;
  while (pos < options.size()) {
    const std::size_t start = options.find_first_not_of(" \t", pos);
    if (start == std::string::npos) {
      break;
    }
    std::size_t stop = options.find_first_of(" \t", start);
    if (stop == std::string::npos) {
      stop = options.size();
    }
    const std::string token = options.substr(start, stop - start);
    if (token.rfind(kFlag, 0) == 0) {
      const std::string value = token.substr(kFlag.size());
      if (value == "0") {
        level = clc::OptLevel::O0;
      } else if (value == "1") {
        level = clc::OptLevel::O1;
      } else if (value == "2") {
        level = clc::OptLevel::O2;
      } else {
        throw BuildError("invalid build options",
                         "unsupported value in '" + token +
                             "' (expected -cl-opt-level=0|1|2)");
      }
    }
    pos = stop;
  }
  return level;
}

} // namespace

Program Program::fromSource(std::string source) {
  Program p;
  p.impl_ = std::make_shared<Impl>();
  p.impl_->source = std::move(source);
  return p;
}

Program Program::fromBinary(const std::vector<std::uint8_t>& binary) {
  Program p;
  p.impl_ = std::make_shared<Impl>();
  p.impl_->program = clc::deserializeProgram(binary);
  p.impl_->built = true;
  p.impl_->buildLog = "(loaded from binary)";
  return p;
}

void Program::build(const std::string& options) {
  COMMON_CHECK_MSG(impl_ != nullptr, "build on invalid Program");
  if (impl_->built) {
    return;
  }
  const clc::OptLevel level = parseOptLevel(options);
  if (FaultInjector::enabled()) {
    if (FaultInjector::instance().check(FaultSite::Build, impl_->source)) {
      // Injected CL_BUILD_PROGRAM_FAILURE: the program stays unbuilt and
      // can be rebuilt later (a real driver can fail transiently too).
      impl_->buildLog = "injected build failure (CL_BUILD_PROGRAM_FAILURE)";
      throw BuildError("program build failed: injected fault",
                       impl_->buildLog);
    }
  }
  try {
    impl_->program = clc::compile(impl_->source);
    clc::optimize(impl_->program, level);
    impl_->built = true;
    impl_->buildLog = "build successful";
  } catch (const clc::CompileError& e) {
    impl_->buildLog =
        clc::renderContext(impl_->source, e.loc(), e.message());
    throw BuildError("program build failed: " + std::string(e.what()),
                     impl_->buildLog);
  }
}

bool Program::isBuilt() const {
  return impl_ != nullptr && impl_->built;
}

const std::string& Program::buildLog() const {
  COMMON_CHECK(impl_ != nullptr);
  return impl_->buildLog;
}

const std::string& Program::source() const {
  COMMON_CHECK(impl_ != nullptr);
  return impl_->source;
}

std::vector<std::uint8_t> Program::binary() const {
  COMMON_EXPECTS(isBuilt(), "binary() requires a built program");
  return clc::serializeProgram(impl_->program);
}

const clc::Program& Program::compiled() const {
  COMMON_EXPECTS(isBuilt(), "program is not built");
  return impl_->program;
}

std::vector<std::string> Program::kernelNames() const {
  COMMON_EXPECTS(isBuilt(), "program is not built");
  std::vector<std::string> names;
  for (const auto& k : impl_->program.kernels) {
    names.push_back(k.name);
  }
  return names;
}

Kernel Program::createKernel(const std::string& name) const {
  COMMON_EXPECTS(isBuilt(), "createKernel requires a built program");
  // Alias the shared_ptr so the kernel keeps the program alive.
  auto compiledPtr = std::shared_ptr<const clc::Program>(
      impl_, &impl_->program);
  return Kernel(std::move(compiledPtr), name);
}

Kernel::Kernel(std::shared_ptr<const clc::Program> program, std::string name)
    : program_(std::move(program)), name_(std::move(name)) {
  kernel_ = program_->findKernel(name_);
  if (kernel_ == nullptr) {
    throw common::InvalidArgument("no kernel named '" + name_ +
                                  "' in program");
  }
  func_ = &program_->functions[kernel_->functionIndex];
  args_.resize(func_->params.size());
}

std::size_t Kernel::argCount() const {
  return func_ == nullptr ? 0 : func_->params.size();
}

const clc::ParamInfo& Kernel::param(std::size_t index) const {
  COMMON_EXPECTS(func_ != nullptr, "use of an invalid Kernel handle");
  if (index >= func_->params.size()) {
    throw common::InvalidArgument(
        "kernel '" + name_ + "' has " +
        std::to_string(func_->params.size()) + " arguments; index " +
        std::to_string(index) + " is out of range");
  }
  return func_->params[index];
}

void Kernel::setArg(std::size_t index, const Buffer& buffer) {
  const clc::ParamInfo& p = param(index);
  if (p.kind != clc::ParamKind::GlobalPtr) {
    throw common::InvalidArgument(
        "kernel '" + name_ + "' argument " + std::to_string(index) + " ('" +
        p.name + "') is not a __global pointer");
  }
  StagedArg arg;
  arg.set = true;
  arg.value.kind = clc::KernelArgValue::Kind::Buffer;
  arg.buffer = buffer;
  args_[index] = std::move(arg);
}

void Kernel::setScalar(std::size_t index, std::uint64_t canonical,
                       clc::TypeTag sourceTag) {
  const clc::ParamInfo& p = param(index);
  if (p.kind != clc::ParamKind::Scalar) {
    throw common::InvalidArgument(
        "kernel '" + name_ + "' argument " + std::to_string(index) + " ('" +
        p.name + "') is not a scalar");
  }
  StagedArg arg;
  arg.set = true;
  arg.value.kind = clc::KernelArgValue::Kind::Scalar;
  // Convert the host value to the parameter's declared type, so e.g.
  // setArg(i, 2) on a float parameter passes 2.0f.
  arg.value.scalar = [&] {
    // Reuse the VM's conversion table via a tiny local re-implementation:
    // integers <-> floats of matching width.
    if (sourceTag == p.scalarTag) {
      return canonical;
    }
    // Route through double for numeric correctness.
    double v = 0;
    switch (sourceTag) {
      case clc::TypeTag::F32: {
        float f;
        const auto bits = std::uint32_t(canonical);
        std::memcpy(&f, &bits, 4);
        v = f;
        break;
      }
      case clc::TypeTag::F64: {
        double d;
        std::memcpy(&d, &canonical, 8);
        v = d;
        break;
      }
      case clc::TypeTag::U32:
      case clc::TypeTag::U64:
        v = double(canonical);
        break;
      default:
        v = double(std::int64_t(canonical));
        break;
    }
    switch (p.scalarTag) {
      case clc::TypeTag::F32: {
        const float f = float(v);
        std::uint32_t bits;
        std::memcpy(&bits, &f, 4);
        return std::uint64_t(bits);
      }
      case clc::TypeTag::F64: {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        return bits;
      }
      case clc::TypeTag::U8: return std::uint64_t(std::uint8_t(v));
      case clc::TypeTag::I8:
        return std::uint64_t(std::int64_t(std::int8_t(v)));
      case clc::TypeTag::U16: return std::uint64_t(std::uint16_t(v));
      case clc::TypeTag::I16:
        return std::uint64_t(std::int64_t(std::int16_t(v)));
      case clc::TypeTag::U32: return std::uint64_t(std::uint32_t(v));
      case clc::TypeTag::I32:
        return std::uint64_t(std::int64_t(std::int32_t(v)));
      default:
        return sourceTag == clc::TypeTag::U64 || sourceTag == clc::TypeTag::I64
                   ? canonical
                   : std::uint64_t(std::int64_t(v));
    }
  }();
  args_[index] = std::move(arg);
}

void Kernel::setArg(std::size_t index, float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, 4);
  setScalar(index, bits, clc::TypeTag::F32);
}

void Kernel::setArg(std::size_t index, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  setScalar(index, bits, clc::TypeTag::F64);
}

void Kernel::setArg(std::size_t index, std::int32_t value) {
  setScalar(index, std::uint64_t(std::int64_t(value)), clc::TypeTag::I32);
}

void Kernel::setArg(std::size_t index, std::uint32_t value) {
  setScalar(index, value, clc::TypeTag::U32);
}

void Kernel::setArg(std::size_t index, std::int64_t value) {
  setScalar(index, std::uint64_t(value), clc::TypeTag::I64);
}

void Kernel::setArg(std::size_t index, std::uint64_t value) {
  setScalar(index, value, clc::TypeTag::U64);
}

void Kernel::setArgBytes(std::size_t index, const void* data,
                         std::size_t size) {
  const clc::ParamInfo& p = param(index);
  if (p.kind != clc::ParamKind::Struct) {
    throw common::InvalidArgument(
        "kernel '" + name_ + "' argument " + std::to_string(index) + " ('" +
        p.name + "') is not a by-value struct");
  }
  if (size != p.size) {
    throw common::InvalidArgument(
        "kernel '" + name_ + "' argument " + std::to_string(index) +
        " expects " + std::to_string(p.size) + " bytes, got " +
        std::to_string(size));
  }
  StagedArg arg;
  arg.set = true;
  arg.value.kind = clc::KernelArgValue::Kind::Struct;
  arg.value.bytes.resize(size);
  std::memcpy(arg.value.bytes.data(), data, size);
  args_[index] = std::move(arg);
}

void Kernel::setArgLocal(std::size_t index, std::size_t bytes) {
  const clc::ParamInfo& p = param(index);
  if (p.kind != clc::ParamKind::LocalPtr) {
    throw common::InvalidArgument(
        "kernel '" + name_ + "' argument " + std::to_string(index) + " ('" +
        p.name + "') is not a __local pointer");
  }
  StagedArg arg;
  arg.set = true;
  arg.value.kind = clc::KernelArgValue::Kind::Local;
  arg.value.localSize = std::uint32_t(bytes);
  args_[index] = std::move(arg);
}

} // namespace ocl
