// Umbrella header for the simulated OpenCL runtime.
//
// The host API mirrors OpenCL 1.1's object model (platforms, devices,
// contexts, command queues, buffers, programs built from source at
// runtime, kernels, events with profiling) with C++ RAII handles instead
// of the C API. Kernels are interpreted by the clc VM; durations are
// virtual time from the calibrated timing model — see DESIGN.md.
#pragma once

#include "ocl/buffer.h"
#include "ocl/context.h"
#include "ocl/device.h"
#include "ocl/event.h"
#include "ocl/fault.h"
#include "ocl/program.h"
#include "ocl/queue.h"
#include "ocl/timing_model.h"
