// In-order command queue: the only way work reaches a device.
//
// Each enqueue executes the command's real effect immediately (memcpy,
// kernel interpretation) and places it on the device's *virtual* timeline:
//   start = max(device ready, host now, dependencies' end)
//   end   = start + modeled duration
// Blocking variants advance the host clock to the command's end, exactly
// like clFinish / blocking clEnqueueReadBuffer would stall a real host.
#pragma once

#include <cstdint>
#include <vector>

#include "ocl/event.h"
#include "ocl/program.h"
#include "ocl/timing_model.h"

namespace ocl {

struct NDRange1D {
  std::size_t global = 0;
  std::size_t local = 0;
};

class CommandQueue {
public:
  CommandQueue() = default;
  CommandQueue(Device device, Backend backend = Backend::OpenCL);

  bool valid() const noexcept { return device_.valid(); }
  Device device() const noexcept { return device_; }
  Backend backend() const noexcept { return backend_; }

  /// Host -> device. Non-blocking in virtual time (data is staged now).
  Event enqueueWriteBuffer(const Buffer& buffer, std::size_t offset,
                           std::size_t bytes, const void* src,
                           const std::vector<Event>& deps = {});

  /// Device -> host. `blocking` advances the host clock to completion.
  Event enqueueReadBuffer(const Buffer& buffer, std::size_t offset,
                          std::size_t bytes, void* dst, bool blocking = true,
                          const std::vector<Event>& deps = {});

  /// Device -> device copy (possibly across devices, staged via PCIe).
  Event enqueueCopyBuffer(const Buffer& src, std::size_t srcOffset,
                          const Buffer& dst, std::size_t dstOffset,
                          std::size_t bytes,
                          const std::vector<Event>& deps = {});

  /// ND-range kernel launch (1D convenience below).
  Event enqueueNDRange(Kernel& kernel, const clc::NDRange& range,
                       const std::vector<Event>& deps = {});
  Event enqueueNDRange(Kernel& kernel, NDRange1D range,
                       const std::vector<Event>& deps = {});

  /// Blocks the virtual host until every enqueued command has completed.
  void finish();

  /// Profile of the last kernel launch (for tests and benchmarks).
  const clc::LaunchStats& lastLaunchStats() const noexcept {
    return lastStats_;
  }

private:
  std::uint64_t commandStartNs(const std::vector<Event>& deps) const;
  Event retire(std::uint64_t startNs, std::uint64_t durationNs);

  Device device_;
  Backend backend_ = Backend::OpenCL;
  TimingModel model_{DeviceSpec{}, Backend::OpenCL};
  clc::LaunchStats lastStats_;
};

} // namespace ocl
