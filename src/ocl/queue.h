// Command queue: the only way work reaches a device.
//
// Each enqueue executes the command's real effect immediately (memcpy,
// kernel interpretation) and schedules it onto the *engine* it occupies
// on the device's virtual timelines — kernel launches and on-device
// copies on the compute engine, uploads on the H2D DMA engine, downloads
// on the D2H DMA engine (cross-device copies occupy the source's D2H and
// the destination's H2D engines):
//   start = max(engine ready, host now, dependencies' end)
//   end   = start + modeled duration
// Commands on one engine execute FIFO; commands on different engines
// overlap unless an event dependency orders them. An *in-order* queue
// (the default, matching clCreateCommandQueue without
// CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) additionally chains every
// command after the previous one, serializing across engines exactly like
// a real in-order queue. Out-of-order queues schedule purely from the
// event dependency DAG — SkelCL's runtime uses them to overlap transfers
// with compute.
// Blocking variants advance the host clock to the command's end, exactly
// like clFinish / blocking clEnqueueReadBuffer would stall a real host.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/prng.h"
#include "ocl/event.h"
#include "ocl/program.h"
#include "ocl/timing_model.h"
#include "trace/trace.h"

namespace ocl {

struct NDRange1D {
  std::size_t global = 0;
  std::size_t local = 0;
  std::size_t offset = 0; // global work offset (clEnqueueNDRangeKernel)
};

/// Execution discipline of a CommandQueue (CL_QUEUE_OUT_OF_ORDER_...).
enum class QueueOrder {
  InOrder,    // every command implicitly depends on the previous one
  OutOfOrder, // commands are ordered only by engines and explicit deps
};

/// Ready-queue tie-breaking of the out-of-order scheduler.
///
/// The event DAG underdetermines the schedule: when several commands are
/// ready, a real scheduler picks one and the rest incur dispatch latency.
/// Fifo (the default) always dispatches immediately in enqueue order —
/// the single deterministic schedule the rest of the test suite runs on.
/// SeededShuffle models every other legal tie-break by delaying each
/// command's dispatch by a bounded pseudo-random amount drawn from a
/// seeded PRNG: all DAG and engine-FIFO constraints still hold (a start
/// time only ever moves later), so each seed yields one alternative legal
/// schedule, byte-reproducible from the seed. The schedule-fuzzing suite
/// asserts that outputs, kernel cycles, and per-engine busy totals are
/// invariant across seeds. In-order queues ignore the policy (they have
/// no tie to break).
struct SchedulePolicy {
  enum class Kind : std::uint8_t { Fifo, SeededShuffle };
  Kind kind = Kind::Fifo;
  std::uint64_t seed = 0;

  static SchedulePolicy fifo() noexcept { return {}; }
  static SchedulePolicy seededShuffle(std::uint64_t seed) noexcept {
    return {Kind::SeededShuffle, seed};
  }
};

class CommandQueue {
public:
  CommandQueue() = default;
  CommandQueue(Device device, Backend backend = Backend::OpenCL,
               QueueOrder order = QueueOrder::InOrder,
               SchedulePolicy policy = SchedulePolicy::fifo());

  bool valid() const noexcept { return device_.valid(); }
  Device device() const noexcept { return device_; }
  Backend backend() const noexcept { return backend_; }
  QueueOrder order() const noexcept { return order_; }
  const SchedulePolicy& schedulePolicy() const noexcept { return policy_; }

  /// Host -> device on the H2D DMA engine. Non-blocking in virtual time
  /// (data is staged now); the returned event marks when the device-side
  /// copy is complete — pass it as a dependency to commands that read the
  /// buffer from another engine.
  Event enqueueWriteBuffer(const Buffer& buffer, std::size_t offset,
                           std::size_t bytes, const void* src,
                           const std::vector<Event>& deps = {});

  /// Device -> host on the D2H DMA engine. Pass the event of the command
  /// that produced the buffer contents in `deps`; with `blocking` the
  /// host clock advances to completion, otherwise wait on the returned
  /// event at the true consumption point.
  Event enqueueReadBuffer(const Buffer& buffer, std::size_t offset,
                          std::size_t bytes, void* dst, bool blocking = true,
                          const std::vector<Event>& deps = {});

  /// Buffer -> buffer copy. Same-device copies run on the compute engine
  /// at memory bandwidth; cross-device copies are staged via PCIe and
  /// occupy the source's D2H and the destination's H2D engines.
  Event enqueueCopyBuffer(const Buffer& src, std::size_t srcOffset,
                          const Buffer& dst, std::size_t dstOffset,
                          std::size_t bytes,
                          const std::vector<Event>& deps = {});

  /// ND-range kernel launch on the compute engine (1D convenience below).
  Event enqueueNDRange(Kernel& kernel, const clc::NDRange& range,
                       const std::vector<Event>& deps = {});
  Event enqueueNDRange(Kernel& kernel, NDRange1D range,
                       const std::vector<Event>& deps = {});

  /// Blocks the virtual host until every enqueued command has completed
  /// (the max over all three engine timelines).
  void finish();

  /// Profile of the last kernel launch (for tests and benchmarks).
  const clc::LaunchStats& lastLaunchStats() const noexcept {
    return lastStats_;
  }

  /// Total simulated kernel cycles enqueued through this queue since
  /// construction. Scheduling-invariance checks compare this across
  /// serialized and overlapped runs of the same workload.
  std::uint64_t cumulativeKernelCycles() const noexcept {
    return cumulativeKernelCycles_;
  }

  /// Number of kernel launches enqueued through this queue since
  /// construction. The fusion suite compares this across fused and
  /// unfused runs of the same workload.
  std::uint64_t cumulativeKernelLaunches() const noexcept {
    return cumulativeKernelLaunches_;
  }

private:
  /// Throws DeviceLost when the queue's device has been marked lost.
  /// Every enqueue checks this first, before any effect.
  void requireDeviceAlive() const;
  /// Bounded pseudo-random dispatch latency under SeededShuffle on an
  /// out-of-order queue; 0 under Fifo or on in-order queues.
  std::uint64_t dispatchJitterNs();
  std::uint64_t commandStartNs(Engine engine,
                               const std::vector<Event>& deps) const;
  /// Closes out one command: assigns its id, stamps the profiling
  /// timestamps, occupies the engine timeline, and — when tracing is on —
  /// files an engine span with the tracer (kind/label/bytes/cycles plus
  /// the dependency edges that constrained the start time).
  Event retire(Engine engine, std::uint64_t startNs, std::uint64_t durationNs,
               trace::CommandKind kind, std::string_view label,
               std::uint64_t bytes, std::uint64_t cycles,
               const std::vector<Event>& deps);

  Device device_;
  Backend backend_ = Backend::OpenCL;
  QueueOrder order_ = QueueOrder::InOrder;
  SchedulePolicy policy_;
  common::Xoshiro256 scheduleRng_;
  TimingModel model_{DeviceSpec{}, Backend::OpenCL};
  clc::LaunchStats lastStats_;
  Event last_; // previous command, for in-order chaining
  std::uint64_t lastSubmittedEndNs_ = 0;
  std::uint64_t cumulativeKernelCycles_ = 0;
  std::uint64_t cumulativeKernelLaunches_ = 0;
};

} // namespace ocl
