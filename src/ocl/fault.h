// Deterministic fault injection for the simulated OpenCL runtime.
//
// In the style of deterministic-simulation testing (FoundationDB's
// simulator), every failure a real driver can produce — allocation
// failure, program build failure, truncated PCIe transfer, a device
// dropping off the bus mid-queue — can be injected at its natural hook
// point in src/ocl, driven by a *plan* evaluated against deterministic
// per-site call counters and a seeded PRNG. Given the same plan, seed,
// and call sequence, the entire failure sequence is byte-reproducible.
//
// Plan grammar (SKELCL_FAULT_PLAN, comma-separated rules):
//
//   rule    := site [ '~' pattern ] '@' trigger [ '=lost' ]
//   site    := alloc | build | write | read | copy | kernel
//            | transfer   (write | read | copy)
//            | enqueue    (write | read | copy | kernel)
//            | any
//   trigger := K          fire on the K-th matching call (1-based)
//            | 'p' P      fire with probability P per call (seeded PRNG)
//            | '*'        fire on every matching call
//
// A '~pattern' restricts the rule to calls whose label contains the
// pattern as a substring (e.g. a kernel name); '=lost' turns the fault
// into a device loss: the device is marked lost and every later command
// targeting it fails with DeviceLost until the system is reconfigured.
//
// Examples:
//   SKELCL_FAULT_PLAN="transfer@3"              third transfer fails
//   SKELCL_FAULT_PLAN="build@1"                 first build fails
//   SKELCL_FAULT_PLAN="kernel~skelcl_map@2"     2nd map launch fails
//   SKELCL_FAULT_PLAN="enqueue@p0.1" SKELCL_FAULT_SEED=42
//   SKELCL_FAULT_PLAN="kernel@5=lost"           5th launch kills the device
//
// The injector never throws by itself: each hook site raises the typed
// exception below so it can attach site state (bytes copied before the
// truncation, the device index) and leave queue/timeline state intact.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/prng.h"

namespace ocl {

/// Where in the runtime a fault can fire.
enum class FaultSite : std::uint8_t {
  Alloc = 0,  // buffer allocation (Context::createBuffer)
  Build = 1,  // program build (Program::build)
  Write = 2,  // host -> device transfer (enqueueWriteBuffer)
  Read = 3,   // device -> host transfer (enqueueReadBuffer)
  Copy = 4,   // buffer -> buffer copy (enqueueCopyBuffer)
  Kernel = 5, // kernel launch (enqueueNDRange)
};

inline constexpr std::size_t kFaultSiteCount = 6;

const char* faultSiteName(FaultSite site) noexcept;

/// Device index used when a failure has no single device (builds).
inline constexpr std::uint32_t kNoFaultDevice = 0xffffffffu;

/// OpenCL-style status codes carried by injected failures.
enum class Status : std::int32_t {
  DeviceNotAvailable = -2,          // CL_DEVICE_NOT_AVAILABLE
  MemObjectAllocationFailure = -4,  // CL_MEM_OBJECT_ALLOCATION_FAILURE
  OutOfResources = -5,              // CL_OUT_OF_RESOURCES
  BuildProgramFailure = -11,        // CL_BUILD_PROGRAM_FAILURE
};

const char* statusName(Status status) noexcept;

/// Base of every driver-level runtime failure (injected or organic):
/// carries the OpenCL-style status and the device it happened on.
/// Callers up the stack (skeletons) prepend context — the message then
/// reads "Map skeleton on device 2: <original what>" while the dynamic
/// type stays catchable.
class ClError : public common::Error {
public:
  ClError(Status status, std::uint32_t deviceIndex, const std::string& what)
      : common::Error(what), status_(status), deviceIndex_(deviceIndex),
        what_(what) {}

  const char* what() const noexcept override { return what_.c_str(); }
  Status status() const noexcept { return status_; }
  std::uint32_t deviceIndex() const noexcept { return deviceIndex_; }

  void prependContext(const std::string& context) {
    what_ = context + ": " + what_;
  }

private:
  Status status_;
  std::uint32_t deviceIndex_;
  std::string what_;
};

/// Buffer allocation failed (CL_MEM_OBJECT_ALLOCATION_FAILURE /
/// CL_OUT_OF_RESOURCES). Thrown both by injected faults and by genuine
/// device-memory exhaustion.
class AllocFailure : public ClError {
public:
  AllocFailure(std::uint32_t deviceIndex, const std::string& what,
               Status status = Status::MemObjectAllocationFailure)
      : ClError(status, deviceIndex, what) {}
};

/// A host<->device or device<->device transfer failed. `bytesTransferred`
/// of `bytesRequested` landed before the failure (truncated transfer);
/// the destination range beyond that point is unspecified.
class TransferFailure : public ClError {
public:
  TransferFailure(std::uint32_t deviceIndex, std::size_t bytesRequested,
                  std::size_t bytesTransferred, const std::string& what)
      : ClError(Status::OutOfResources, deviceIndex, what),
        bytesRequested_(bytesRequested),
        bytesTransferred_(bytesTransferred) {}

  std::size_t bytesRequested() const noexcept { return bytesRequested_; }
  std::size_t bytesTransferred() const noexcept { return bytesTransferred_; }

private:
  std::size_t bytesRequested_;
  std::size_t bytesTransferred_;
};

/// A kernel launch was rejected (CL_OUT_OF_RESOURCES). The kernel did not
/// execute: no cycles were charged, no buffer was written.
class LaunchFailure : public ClError {
public:
  LaunchFailure(std::uint32_t deviceIndex, const std::string& what)
      : ClError(Status::OutOfResources, deviceIndex, what) {}
};

/// The device dropped off the bus (CL_DEVICE_NOT_AVAILABLE). Every later
/// command targeting it fails the same way until configureSystem().
class DeviceLost : public ClError {
public:
  DeviceLost(std::uint32_t deviceIndex, const std::string& what)
      : ClError(Status::DeviceNotAvailable, deviceIndex, what) {}
};

/// Record of one fired fault — the reproducibility log entry.
struct Fault {
  FaultSite site = FaultSite::Alloc;
  bool deviceLost = false;    // rule carried '=lost'
  std::uint64_t siteCall = 0; // per-site call index that fired (1-based)
  std::uint32_t device = kNoFaultDevice;
  std::string label;

  friend bool operator==(const Fault& a, const Fault& b) {
    return a.site == b.site && a.deviceLost == b.deviceLost &&
           a.siteCall == b.siteCall && a.device == b.device &&
           a.label == b.label;
  }
};

/// The process-wide fault plan. Disabled (the default) costs one relaxed
/// atomic load per hook — the same discipline as trace::Recorder.
class FaultInjector {
public:
  static FaultInjector& instance();

  /// True when a plan is armed; hooks skip everything else otherwise.
  static bool enabled() noexcept {
    return instance().armed_.load(std::memory_order_relaxed);
  }

  /// Parses and arms `plan` with `seed`; an empty plan disarms. Resets
  /// all call counters, the PRNG, and the fired-fault log, so equal
  /// (plan, seed, call sequence) triples replay byte-identically.
  /// Throws common::InvalidArgument on a malformed plan string.
  void configure(const std::string& plan, std::uint64_t seed = 0);

  /// configure() from SKELCL_FAULT_PLAN / SKELCL_FAULT_SEED. No-op when
  /// SKELCL_FAULT_PLAN is unset or empty (a programmatic configuration
  /// stays in force).
  void configureFromEnv();

  /// Disarms and clears counters and the log.
  void reset();

  /// Consulted by each hook site. Counts the call, evaluates the plan,
  /// and returns the fault to raise, if any. Never throws.
  std::optional<Fault> check(FaultSite site, std::string_view label,
                             std::uint32_t device = kNoFaultDevice);

  /// Every fault fired since the last configure()/reset(), in order.
  std::vector<Fault> firedLog() const;

  /// Total calls seen at `site` since the last configure()/reset().
  std::uint64_t siteCalls(FaultSite site) const;

private:
  struct Rule {
    bool sites[kFaultSiteCount] = {false, false, false, false, false, false};
    std::string pattern;        // empty = matches any label
    std::uint64_t nthCall = 0;  // fire on the N-th matching call; 0 = off
    double probability = -1.0;  // fire with this probability; < 0 = off
    bool always = false;        // '*' trigger
    bool lost = false;          // '=lost' effect
    std::uint64_t matched = 0;  // matching calls seen so far
  };

  FaultInjector() = default;

  static Rule parseRule(const std::string& text);

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::vector<Rule> rules_;
  common::Xoshiro256 rng_;
  std::uint64_t calls_[kFaultSiteCount] = {0, 0, 0, 0, 0, 0};
  std::vector<Fault> fired_;
};

} // namespace ocl
