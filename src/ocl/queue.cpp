#include "ocl/queue.h"

#include <cstring>

#include "common/thread_pool.h"

namespace ocl {

CommandQueue::CommandQueue(Device device, Backend backend)
    : device_(std::move(device)),
      backend_(backend),
      model_(device_.spec(), backend) {}

std::uint64_t CommandQueue::commandStartNs(
    const std::vector<Event>& deps) const {
  std::uint64_t start = std::max(hostTimeNs(), device_.state().readyTimeNs());
  for (const Event& e : deps) {
    if (e.valid()) {
      start = std::max(start, e.endNs());
    }
  }
  return start;
}

Event CommandQueue::retire(std::uint64_t startNs, std::uint64_t durationNs) {
  auto state = std::make_shared<EventState>();
  state->queuedNs = hostTimeNs();
  state->startNs = startNs;
  state->endNs = startNs + durationNs;
  device_.state().setReadyTimeNs(state->endNs);
  advanceHostTimeNs(model_.enqueueOverheadNs());
  return Event(std::move(state));
}

Event CommandQueue::enqueueWriteBuffer(const Buffer& buffer,
                                       std::size_t offset, std::size_t bytes,
                                       const void* src,
                                       const std::vector<Event>& deps) {
  COMMON_EXPECTS(buffer.valid(), "write to invalid buffer");
  COMMON_EXPECTS(buffer.device() == device_,
                 "buffer belongs to a different device than the queue");
  COMMON_EXPECTS(offset + bytes <= buffer.size(),
                 "write exceeds buffer size");
  std::memcpy(buffer.state().data() + offset, src, bytes);
  return retire(commandStartNs(deps), model_.transferDurationNs(bytes));
}

Event CommandQueue::enqueueReadBuffer(const Buffer& buffer,
                                      std::size_t offset, std::size_t bytes,
                                      void* dst, bool blocking,
                                      const std::vector<Event>& deps) {
  COMMON_EXPECTS(buffer.valid(), "read from invalid buffer");
  COMMON_EXPECTS(buffer.device() == device_,
                 "buffer belongs to a different device than the queue");
  COMMON_EXPECTS(offset + bytes <= buffer.size(),
                 "read exceeds buffer size");
  std::memcpy(dst, buffer.state().data() + offset, bytes);
  Event event =
      retire(commandStartNs(deps), model_.transferDurationNs(bytes));
  if (blocking) {
    event.wait();
  }
  return event;
}

Event CommandQueue::enqueueCopyBuffer(const Buffer& src,
                                      std::size_t srcOffset,
                                      const Buffer& dst,
                                      std::size_t dstOffset,
                                      std::size_t bytes,
                                      const std::vector<Event>& deps) {
  COMMON_EXPECTS(src.valid() && dst.valid(), "copy with invalid buffer");
  COMMON_EXPECTS(srcOffset + bytes <= src.size(),
                 "copy source range exceeds buffer");
  COMMON_EXPECTS(dstOffset + bytes <= dst.size(),
                 "copy destination range exceeds buffer");
  std::memcpy(dst.state().data() + dstOffset,
              src.state().data() + srcOffset, bytes);

  std::uint64_t start = commandStartNs(deps);
  std::uint64_t duration;
  if (src.device() == dst.device()) {
    // On-device copy: the copy runs on the buffers' device, so it must be
    // the queue's device — otherwise the duration would be computed from
    // the wrong device's bandwidth and charged to the wrong timeline.
    COMMON_EXPECTS(src.device() == device_,
                   "buffer belongs to a different device than the queue");
    // On-device copy runs at memory bandwidth (read + write).
    const double bw = device_.spec().memBandwidthGBs * 1e9;
    duration = std::uint64_t(double(2 * bytes) / bw * 1e9);
  } else {
    // Cross-device: staged over PCIe (down from src, up to dst). Both
    // devices are busy for the whole transfer.
    const TimingModel srcModel(src.device().spec(), backend_);
    const TimingModel dstModel(dst.device().spec(), backend_);
    start = std::max(start, src.device().state().readyTimeNs());
    start = std::max(start, dst.device().state().readyTimeNs());
    duration = srcModel.transferDurationNs(bytes) +
               dstModel.transferDurationNs(bytes);
    src.device().state().setReadyTimeNs(start + duration);
    dst.device().state().setReadyTimeNs(start + duration);
  }
  return retire(start, duration);
}

Event CommandQueue::enqueueNDRange(Kernel& kernel, const clc::NDRange& range,
                                   const std::vector<Event>& deps) {
  COMMON_EXPECTS(kernel.valid(), "launch of invalid kernel");

  // Assemble the launch's segment table and argument values.
  std::vector<clc::Segment> segments;
  std::vector<clc::KernelArgValue> args;
  const auto& staged = kernel.stagedArgs();
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (!staged[i].set) {
      throw common::InvalidArgument(
          "kernel '" + kernel.name() + "' argument " + std::to_string(i) +
          " was never set");
    }
    clc::KernelArgValue value = staged[i].value;
    if (value.kind == clc::KernelArgValue::Kind::Buffer) {
      COMMON_EXPECTS(staged[i].buffer.device() == device_,
                     "kernel argument buffer lives on a different device");
      clc::Segment seg;
      seg.base = staged[i].buffer.state().data();
      seg.size = staged[i].buffer.size();
      value.segmentIndex = std::uint32_t(segments.size());
      segments.push_back(seg);
    }
    args.push_back(std::move(value));
  }

  if (range.totalLocal() > device_.spec().maxWorkGroupSize) {
    throw common::InvalidArgument(
        "work-group size " + std::to_string(range.totalLocal()) +
        " exceeds the device maximum of " +
        std::to_string(device_.spec().maxWorkGroupSize));
  }

  lastStats_ = clc::executeKernel(kernel.program(), kernel.name(), range,
                                  args, segments,
                                  &common::ThreadPool::global());
  return retire(commandStartNs(deps), model_.kernelDurationNs(lastStats_));
}

Event CommandQueue::enqueueNDRange(Kernel& kernel, NDRange1D range,
                                   const std::vector<Event>& deps) {
  clc::NDRange full;
  full.dims = 1;
  full.globalSize[0] = range.global;
  full.localSize[0] = range.local;
  return enqueueNDRange(kernel, full, deps);
}

void CommandQueue::finish() {
  syncHostTimeToNs(device_.state().readyTimeNs());
}

} // namespace ocl
