#include "ocl/queue.h"

#include <cstring>

#include "common/thread_pool.h"
#include "ocl/fault.h"
#include "trace/load_monitor.h"
#include "trace/recorder.h"

namespace ocl {

namespace {

[[noreturn]] void throwDeviceLost(const DeviceState& state,
                                  const char* during) {
  throw DeviceLost(state.index(),
                   std::string("device ") + std::to_string(state.index()) +
                       " ('" + state.spec().name + "') is lost (" +
                       statusName(Status::DeviceNotAvailable) + ") during " +
                       during);
}

/// Raises the typed exception for a fault fired at a transfer site.
/// Models a *truncated* transfer: half of the requested bytes land in the
/// destination before the failure; queue and timeline state stay
/// untouched (the command never retires, no event is produced, no engine
/// time is occupied), so the caller may keep enqueueing.
[[noreturn]] void raiseTransferFault(const Fault& fault, DeviceState& device,
                                     std::size_t bytes, std::uint8_t* dst,
                                     const std::uint8_t* src) {
  if (fault.deviceLost) {
    device.markLost();
    throwDeviceLost(device, faultSiteName(fault.site));
  }
  const std::size_t transferred = bytes / 2;
  if (dst != nullptr && src != nullptr) {
    std::memcpy(dst, src, transferred);
  }
  throw TransferFailure(
      device.index(), bytes, transferred,
      std::string("injected transfer failure (") +
          statusName(Status::OutOfResources) + ") at site '" +
          faultSiteName(fault.site) + "' on device " +
          std::to_string(device.index()) + ": " +
          std::to_string(transferred) + " of " + std::to_string(bytes) +
          " bytes transferred");
}

} // namespace

namespace {

/// Ids of the events a command's start actually waited on, plus the
/// in-order queue's implicit previous-command edge when present.
std::vector<std::uint64_t> depIds(const std::vector<Event>& deps,
                                  const Event& implicitPrev) {
  std::vector<std::uint64_t> ids;
  ids.reserve(deps.size() + 1);
  if (implicitPrev.valid()) {
    ids.push_back(implicitPrev.commandId());
  }
  for (const Event& e : deps) {
    if (e.valid()) {
      ids.push_back(e.commandId());
    }
  }
  return ids;
}

} // namespace

CommandQueue::CommandQueue(Device device, Backend backend, QueueOrder order,
                           SchedulePolicy policy)
    : device_(std::move(device)),
      backend_(backend),
      order_(order),
      policy_(policy),
      // Decorrelate the per-queue jitter streams: one policy seed, one
      // independent deterministic sequence per device.
      scheduleRng_(policy.seed ^
                   (0x9e3779b97f4a7c15ULL * (device_.state().index() + 1))),
      model_(device_.spec(), backend) {}

void CommandQueue::requireDeviceAlive() const {
  if (device_.state().lost()) {
    throwDeviceLost(device_.state(), "enqueue");
  }
}

std::uint64_t CommandQueue::dispatchJitterNs() {
  if (order_ != QueueOrder::OutOfOrder ||
      policy_.kind != SchedulePolicy::Kind::SeededShuffle) {
    return 0;
  }
  // Up to a few enqueue overheads of dispatch latency: enough to flip
  // the winner among near-tied ready commands, small against command
  // durations so the shuffled schedules stay realistic.
  return scheduleRng_.nextBelow(8 * model_.enqueueOverheadNs() + 1);
}

std::uint64_t CommandQueue::commandStartNs(
    Engine engine, const std::vector<Event>& deps) const {
  // An in-order queue serializes against the *whole device* (the max
  // over all engines), not just the engine the command occupies — this
  // matches the classic single-timeline device model, and it is what
  // the CUDA veneer's default-stream semantics rely on even across
  // separate queue objects. Out-of-order queues wait only for their own
  // engine plus explicit dependencies.
  std::uint64_t start = std::max(
      hostTimeNs(), order_ == QueueOrder::InOrder
                        ? device_.state().readyTimeNs()
                        : device_.state().readyTimeNs(engine));
  if (order_ == QueueOrder::InOrder && last_.valid()) {
    start = std::max(start, last_.endNs());
  }
  for (const Event& e : deps) {
    if (e.valid()) {
      start = std::max(start, e.endNs());
    }
  }
  return start;
}

Event CommandQueue::retire(Engine engine, std::uint64_t startNs,
                           std::uint64_t durationNs, trace::CommandKind kind,
                           std::string_view label, std::uint64_t bytes,
                           std::uint64_t cycles,
                           const std::vector<Event>& deps) {
  auto state = std::make_shared<EventState>();
  state->id = nextCommandId();
  state->queuedNs = hostTimeNs();
  state->startNs = startNs;
  state->endNs = startNs + durationNs;
  // Submission = queued + driver overhead, clamped so that
  // queued <= submit <= start holds even when the engine was idle.
  state->submitNs =
      std::min(startNs, state->queuedNs + model_.enqueueOverheadNs());
  state->engine = engine;
  device_.state().setReadyTimeNs(engine, state->endNs);
  lastSubmittedEndNs_ = std::max(lastSubmittedEndNs_, state->endNs);
  advanceHostTimeNs(model_.enqueueOverheadNs());
  if (kind == trace::CommandKind::Kernel) {
    trace::LoadMonitor::instance().addKernel(device_.state().index(), cycles,
                                             durationNs);
  } else if (kind == trace::CommandKind::Write ||
             kind == trace::CommandKind::Read ||
             kind == trace::CommandKind::CopyPeer) {
    trace::LoadMonitor::instance().addTransfer(device_.state().index(),
                                               bytes);
  }
  if (trace::Recorder::enabled()) {
    const std::vector<std::uint64_t> ids =
        depIds(deps, order_ == QueueOrder::InOrder ? last_ : Event());
    trace::Recorder::CommandInit init;
    init.id = state->id;
    init.device = device_.state().index();
    init.engine = std::uint8_t(engine);
    init.kind = kind;
    init.label = label;
    init.queuedNs = state->queuedNs;
    init.submitNs = state->submitNs;
    init.startNs = state->startNs;
    init.endNs = state->endNs;
    init.bytes = bytes;
    init.cycles = cycles;
    init.deps = &ids;
    trace::Recorder::instance().recordCommand(init);
  }
  Event event(std::move(state));
  last_ = event;
  return event;
}

Event CommandQueue::enqueueWriteBuffer(const Buffer& buffer,
                                       std::size_t offset, std::size_t bytes,
                                       const void* src,
                                       const std::vector<Event>& deps) {
  COMMON_EXPECTS(buffer.valid(), "write to invalid buffer");
  COMMON_EXPECTS(buffer.device() == device_,
                 "buffer belongs to a different device than the queue");
  COMMON_EXPECTS(offset + bytes <= buffer.size(),
                 "write exceeds buffer size");
  requireDeviceAlive();
  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Write, "write_buffer", device_.state().index())) {
      raiseTransferFault(*fault, device_.state(), bytes,
                         buffer.state().data() + offset,
                         static_cast<const std::uint8_t*>(src));
    }
  }
  std::memcpy(buffer.state().data() + offset, src, bytes);
  return retire(Engine::HostToDevice,
                commandStartNs(Engine::HostToDevice, deps) +
                    dispatchJitterNs(),
                model_.transferDurationNs(bytes), trace::CommandKind::Write,
                "write_buffer", bytes, 0, deps);
}

Event CommandQueue::enqueueReadBuffer(const Buffer& buffer,
                                      std::size_t offset, std::size_t bytes,
                                      void* dst, bool blocking,
                                      const std::vector<Event>& deps) {
  COMMON_EXPECTS(buffer.valid(), "read from invalid buffer");
  COMMON_EXPECTS(buffer.device() == device_,
                 "buffer belongs to a different device than the queue");
  COMMON_EXPECTS(offset + bytes <= buffer.size(),
                 "read exceeds buffer size");
  requireDeviceAlive();
  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Read, "read_buffer", device_.state().index())) {
      // A truncated read leaves a partially-written destination — the
      // SkelCL Vector stages downloads and commits only on success, so
      // its host data stays valid anyway.
      raiseTransferFault(*fault, device_.state(), bytes,
                         static_cast<std::uint8_t*>(dst),
                         buffer.state().data() + offset);
    }
  }
  std::memcpy(dst, buffer.state().data() + offset, bytes);
  Event event = retire(Engine::DeviceToHost,
                       commandStartNs(Engine::DeviceToHost, deps) +
                           dispatchJitterNs(),
                       model_.transferDurationNs(bytes),
                       trace::CommandKind::Read, "read_buffer", bytes, 0,
                       deps);
  if (blocking) {
    event.wait();
  }
  return event;
}

Event CommandQueue::enqueueCopyBuffer(const Buffer& src,
                                      std::size_t srcOffset,
                                      const Buffer& dst,
                                      std::size_t dstOffset,
                                      std::size_t bytes,
                                      const std::vector<Event>& deps) {
  COMMON_EXPECTS(src.valid() && dst.valid(), "copy with invalid buffer");
  COMMON_EXPECTS(srcOffset + bytes <= src.size(),
                 "copy source range exceeds buffer");
  COMMON_EXPECTS(dstOffset + bytes <= dst.size(),
                 "copy destination range exceeds buffer");
  const bool sameDevice = src.device() == dst.device();
  // On-device copies run on the buffers' device, so it must be the
  // queue's device — otherwise the duration would be computed from the
  // wrong device's bandwidth and charged to the wrong timeline. Validated
  // *before* the data moves, so a rejected enqueue has no effect.
  if (sameDevice) {
    COMMON_EXPECTS(src.device() == device_,
                   "buffer belongs to a different device than the queue");
  }
  requireDeviceAlive();
  if (src.device().state().lost()) {
    throwDeviceLost(src.device().state(), "copy");
  }
  if (dst.device().state().lost()) {
    throwDeviceLost(dst.device().state(), "copy");
  }
  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Copy, "copy_buffer", dst.device().state().index())) {
      raiseTransferFault(*fault, dst.device().state(), bytes,
                         dst.state().data() + dstOffset,
                         src.state().data() + srcOffset);
    }
  }
  std::memcpy(dst.state().data() + dstOffset,
              src.state().data() + srcOffset, bytes);

  if (sameDevice) {
    // The copy occupies the compute engine (it saturates the memory
    // system the compute engine feeds from).
    return retire(Engine::Compute,
                  commandStartNs(Engine::Compute, deps) + dispatchJitterNs(),
                  model_.deviceCopyDurationNs(bytes),
                  trace::CommandKind::CopyOnDevice, "copy_buffer", bytes, 0,
                  deps);
  }

  // Cross-device: staged over PCIe (down from src, up to dst). The
  // source's D2H engine and the destination's H2D engine are both
  // occupied for the whole transfer; the compute engines of both devices
  // stay free to overlap kernels with the copy. In-order queues wait on
  // the full timelines of both devices instead (single-timeline model).
  //
  // The staged legs *pipeline*: after the first piece lands in host
  // memory the upload streams concurrently with the rest of the
  // download, so the copy takes the slower leg's wire time plus one
  // latency — not the sum of two full latency+wire transfers. When the
  // devices live on different nodes the pieces additionally cross the
  // interconnect, adding its (usually dominant) wire time to the
  // pipeline bottleneck and its latency on top, and occupying the
  // source node's egress and the destination node's ingress link.
  const bool inOrder = order_ == QueueOrder::InOrder;
  const TimingModel srcModel(src.device().spec(), backend_);
  const TimingModel dstModel(dst.device().spec(), backend_);
  DeviceState& srcState = src.device().state();
  DeviceState& dstState = dst.device().state();
  const bool crossNode = srcState.node() != dstState.node();
  NodeState* srcLink = crossNode ? srcState.link().get() : nullptr;
  NodeState* dstLink = crossNode ? dstState.link().get() : nullptr;
  std::uint64_t start = std::max(hostTimeNs(), std::max(
      inOrder ? srcState.readyTimeNs()
              : srcState.readyTimeNs(Engine::DeviceToHost),
      inOrder ? dstState.readyTimeNs()
              : dstState.readyTimeNs(Engine::HostToDevice)));
  if (srcLink != nullptr && dstLink != nullptr) {
    start = std::max(start, std::max(srcLink->egressReadyNs(),
                                     dstLink->ingressReadyNs()));
  }
  if (inOrder && last_.valid()) {
    start = std::max(start, last_.endNs());
  }
  for (const Event& e : deps) {
    if (e.valid()) {
      start = std::max(start, e.endNs());
    }
  }
  start += dispatchJitterNs();
  double wireNs = std::max(srcModel.transferWireNs(bytes),
                           dstModel.transferWireNs(bytes));
  double latencyNs = std::max(srcModel.transferLatencyNs(),
                              dstModel.transferLatencyNs());
  if (crossNode && srcLink != nullptr) {
    const InterconnectSpec& ic = srcLink->interconnect();
    if (ic.bandwidthGBs > 0.0) {
      wireNs = std::max(wireNs,
                        double(bytes) / (ic.bandwidthGBs * 1e9) * 1e9);
    }
    latencyNs += ic.latencyUs * 1e3;
  }
  const auto duration = std::uint64_t(wireNs + latencyNs);
  srcState.setReadyTimeNs(Engine::DeviceToHost, start + duration);

  auto state = std::make_shared<EventState>();
  state->id = nextCommandId();
  state->queuedNs = hostTimeNs();
  state->startNs = start;
  state->endNs = start + duration;
  state->submitNs =
      std::min(start, state->queuedNs + model_.enqueueOverheadNs());
  state->engine = Engine::HostToDevice;
  dstState.setReadyTimeNs(Engine::HostToDevice, state->endNs);
  if (srcLink != nullptr && dstLink != nullptr) {
    srcLink->setEgressReadyNs(state->endNs);
    dstLink->setIngressReadyNs(state->endNs);
  }
  lastSubmittedEndNs_ = std::max(lastSubmittedEndNs_, state->endNs);
  advanceHostTimeNs(model_.enqueueOverheadNs());
  if (trace::Recorder::enabled()) {
    // A cross-device copy occupies two engines on two devices: file one
    // span per leg so both timelines show the occupancy. The event's id
    // names the destination leg (what dependents wait on); the source
    // leg gets its own id. Cross-node copies carry distinct labels (and
    // bump the internode_bytes counter) so skeltrace can attribute
    // interconnect traffic separately from same-node PCIe staging.
    const std::vector<std::uint64_t> ids =
        depIds(deps, order_ == QueueOrder::InOrder ? last_ : Event());
    trace::Recorder::CommandInit init;
    init.kind = trace::CommandKind::CopyPeer;
    init.queuedNs = state->queuedNs;
    init.submitNs = state->submitNs;
    init.startNs = state->startNs;
    init.endNs = state->endNs;
    init.bytes = bytes;
    init.deps = &ids;

    init.id = nextCommandId();
    init.device = srcState.index();
    init.engine = std::uint8_t(Engine::DeviceToHost);
    init.label = crossNode ? "copy_node_out" : "copy_peer_out";
    trace::Recorder::instance().recordCommand(init);

    init.id = state->id;
    init.device = dstState.index();
    init.engine = std::uint8_t(Engine::HostToDevice);
    init.label = crossNode ? "copy_node_in" : "copy_peer_in";
    trace::Recorder::instance().recordCommand(init);

    if (crossNode) {
      trace::Recorder::instance().bumpCounter(
          "internode_bytes", dstState.index(), state->endNs, bytes);
    }
  }
  Event event(std::move(state));
  last_ = event;
  return event;
}

Event CommandQueue::enqueueNDRange(Kernel& kernel, const clc::NDRange& range,
                                   const std::vector<Event>& deps) {
  COMMON_EXPECTS(kernel.valid(), "launch of invalid kernel");
  requireDeviceAlive();

  // Assemble the launch's segment table and argument values.
  std::vector<clc::Segment> segments;
  std::vector<clc::KernelArgValue> args;
  const auto& staged = kernel.stagedArgs();
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (!staged[i].set) {
      throw common::InvalidArgument(
          "kernel '" + kernel.name() + "' argument " + std::to_string(i) +
          " was never set");
    }
    clc::KernelArgValue value = staged[i].value;
    if (value.kind == clc::KernelArgValue::Kind::Buffer) {
      COMMON_EXPECTS(staged[i].buffer.device() == device_,
                     "kernel argument buffer lives on a different device");
      clc::Segment seg;
      seg.base = staged[i].buffer.state().data();
      seg.size = staged[i].buffer.size();
      value.segmentIndex = std::uint32_t(segments.size());
      segments.push_back(seg);
    }
    args.push_back(std::move(value));
  }

  if (range.totalLocal() > device_.spec().maxWorkGroupSize) {
    throw common::InvalidArgument(
        "work-group size " + std::to_string(range.totalLocal()) +
        " exceeds the device maximum of " +
        std::to_string(device_.spec().maxWorkGroupSize));
  }

  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Kernel, kernel.name(), device_.state().index())) {
      // A rejected launch never executes: no cycles are charged, no
      // buffer is written, no engine time is occupied.
      if (fault->deviceLost) {
        device_.state().markLost();
        throwDeviceLost(device_.state(), "kernel launch");
      }
      throw LaunchFailure(
          device_.state().index(),
          std::string("injected launch failure (") +
              statusName(Status::OutOfResources) + ") for kernel '" +
              kernel.name() + "' on device " +
              std::to_string(device_.state().index()));
    }
  }

  lastStats_ = clc::executeKernel(kernel.program(), kernel.name(), range,
                                  args, segments,
                                  &common::ThreadPool::global());
  cumulativeKernelCycles_ += lastStats_.totalCycles;
  cumulativeKernelLaunches_ += 1;
  return retire(Engine::Compute,
                commandStartNs(Engine::Compute, deps) + dispatchJitterNs(),
                model_.kernelDurationNs(lastStats_),
                trace::CommandKind::Kernel, kernel.name(),
                lastStats_.globalBytesRead + lastStats_.globalBytesWritten,
                lastStats_.totalCycles, deps);
}

Event CommandQueue::enqueueNDRange(Kernel& kernel, NDRange1D range,
                                   const std::vector<Event>& deps) {
  clc::NDRange full;
  full.dims = 1;
  full.globalSize[0] = range.global;
  full.localSize[0] = range.local;
  full.globalOffset[0] = range.offset;
  return enqueueNDRange(kernel, full, deps);
}

void CommandQueue::finish() {
  syncHostTimeToNs(
      std::max(device_.state().readyTimeNs(), lastSubmittedEndNs_));
}

} // namespace ocl
