#include "ocl/fault.h"

#include <cctype>
#include <cstdlib>

#include "common/env.h"

namespace ocl {

const char* faultSiteName(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::Alloc: return "alloc";
    case FaultSite::Build: return "build";
    case FaultSite::Write: return "write";
    case FaultSite::Read: return "read";
    case FaultSite::Copy: return "copy";
    case FaultSite::Kernel: return "kernel";
  }
  return "?";
}

const char* statusName(Status status) noexcept {
  switch (status) {
    case Status::DeviceNotAvailable: return "CL_DEVICE_NOT_AVAILABLE";
    case Status::MemObjectAllocationFailure:
      return "CL_MEM_OBJECT_ALLOCATION_FAILURE";
    case Status::OutOfResources: return "CL_OUT_OF_RESOURCES";
    case Status::BuildProgramFailure: return "CL_BUILD_PROGRAM_FAILURE";
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::Rule FaultInjector::parseRule(const std::string& text) {
  Rule rule;
  std::string body = text;

  const std::size_t eq = body.find('=');
  if (eq != std::string::npos) {
    const std::string effect = body.substr(eq + 1);
    if (effect != "lost") {
      throw common::InvalidArgument("fault plan: unknown effect '=" + effect +
                                    "' in rule '" + text + "'");
    }
    rule.lost = true;
    body = body.substr(0, eq);
  }

  const std::size_t at = body.find('@');
  if (at == std::string::npos) {
    throw common::InvalidArgument(
        "fault plan: rule '" + text + "' has no '@trigger' part");
  }
  const std::string trigger = body.substr(at + 1);
  std::string site = body.substr(0, at);

  const std::size_t tilde = site.find('~');
  if (tilde != std::string::npos) {
    rule.pattern = site.substr(tilde + 1);
    site = site.substr(0, tilde);
  }

  auto one = [&rule](FaultSite s) { rule.sites[std::size_t(s)] = true; };
  if (site == "alloc") {
    one(FaultSite::Alloc);
  } else if (site == "build") {
    one(FaultSite::Build);
  } else if (site == "write") {
    one(FaultSite::Write);
  } else if (site == "read") {
    one(FaultSite::Read);
  } else if (site == "copy") {
    one(FaultSite::Copy);
  } else if (site == "kernel") {
    one(FaultSite::Kernel);
  } else if (site == "transfer") {
    one(FaultSite::Write);
    one(FaultSite::Read);
    one(FaultSite::Copy);
  } else if (site == "enqueue") {
    one(FaultSite::Write);
    one(FaultSite::Read);
    one(FaultSite::Copy);
    one(FaultSite::Kernel);
  } else if (site == "any") {
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
      rule.sites[i] = true;
    }
  } else {
    throw common::InvalidArgument("fault plan: unknown site '" + site +
                                  "' in rule '" + text + "'");
  }

  if (trigger == "*") {
    rule.always = true;
  } else if (!trigger.empty() && trigger[0] == 'p') {
    char* end = nullptr;
    const std::string value = trigger.substr(1);
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      throw common::InvalidArgument(
          "fault plan: bad probability trigger '" + trigger + "' in rule '" +
          text + "' (expected p0..p1)");
    }
    rule.probability = p;
  } else {
    char* end = nullptr;
    const long long n = std::strtoll(trigger.c_str(), &end, 10);
    if (end == trigger.c_str() || *end != '\0' || n <= 0) {
      throw common::InvalidArgument(
          "fault plan: bad trigger '" + trigger + "' in rule '" + text +
          "' (expected a 1-based call index, pP, or *)");
    }
    rule.nthCall = std::uint64_t(n);
  }
  return rule;
}

void FaultInjector::configure(const std::string& plan, std::uint64_t seed) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  while (pos <= plan.size()) {
    std::size_t comma = plan.find(',', pos);
    if (comma == std::string::npos) {
      comma = plan.size();
    }
    // Trim surrounding whitespace of the rule.
    std::size_t begin = pos;
    std::size_t end = comma;
    while (begin < end && std::isspace(static_cast<unsigned char>(plan[begin]))) {
      ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(plan[end - 1]))) {
      --end;
    }
    if (end > begin) {
      rules.push_back(parseRule(plan.substr(begin, end - begin)));
    }
    pos = comma + 1;
  }

  std::lock_guard lock(mutex_);
  rules_ = std::move(rules);
  rng_ = common::Xoshiro256(seed);
  for (auto& count : calls_) {
    count = 0;
  }
  fired_.clear();
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::configureFromEnv() {
  const std::string plan = common::envStr("SKELCL_FAULT_PLAN");
  if (plan.empty()) {
    return;
  }
  configure(plan,
            std::uint64_t(common::envInt("SKELCL_FAULT_SEED", 0)));
}

void FaultInjector::reset() { configure("", 0); }

std::optional<Fault> FaultInjector::check(FaultSite site,
                                          std::string_view label,
                                          std::uint32_t device) {
  if (!enabled()) {
    return std::nullopt;
  }
  std::lock_guard lock(mutex_);
  const std::uint64_t call = ++calls_[std::size_t(site)];
  for (Rule& rule : rules_) {
    if (!rule.sites[std::size_t(site)]) {
      continue;
    }
    if (!rule.pattern.empty() &&
        label.find(rule.pattern) == std::string_view::npos) {
      continue;
    }
    const std::uint64_t matched = ++rule.matched;
    bool fire = rule.always;
    if (!fire && rule.nthCall != 0) {
      fire = matched == rule.nthCall;
    }
    // The PRNG is drawn for every matching call of a probability rule,
    // hit or miss, so the draw sequence — and with it the whole failure
    // sequence — depends only on (plan, seed, call sequence).
    if (!fire && rule.probability >= 0.0) {
      fire = rng_.nextDouble() < rule.probability;
    }
    if (fire) {
      Fault fault;
      fault.site = site;
      fault.deviceLost = rule.lost;
      fault.siteCall = call;
      fault.device = device;
      fault.label = std::string(label);
      fired_.push_back(fault);
      return fault;
    }
  }
  return std::nullopt;
}

std::vector<Fault> FaultInjector::firedLog() const {
  std::lock_guard lock(mutex_);
  return fired_;
}

std::uint64_t FaultInjector::siteCalls(FaultSite site) const {
  std::lock_guard lock(mutex_);
  return calls_[std::size_t(site)];
}

} // namespace ocl
