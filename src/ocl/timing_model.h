// Virtual-time cost model: converts executed work (VM launch statistics,
// transfer sizes) into nanoseconds on a device's timeline.
//
// Calibration
// -----------
// The machine running this reproduction has no GPU, so runtimes reported
// by benchmarks are *virtual* seconds computed from real executed work:
//
//   kernel   = launch_overhead
//            + max(compute, memory)                       (roofline)
//   compute  = max over CUs of (sum of its groups' cycles)
//              / (clock * backend_efficiency)
//   group    = max(sum_item_cycles / PEs_per_CU, slowest_item)
//   memory   = global bytes moved / device bandwidth
//   transfer = pcie_latency + bytes / pcie_bandwidth
//   peercopy = max(src wire, dst wire) + max(src, dst latency)
//              (the staged legs pipeline; cross-node copies add the
//              interconnect's wire time to the max and its latency on
//              top — see CommandQueue::enqueueCopyBuffer)
//   energy   = idle_power x wall + (busy-idle) x compute busy
//              + nj_per_byte x bytes moved        (1 W = 1 nJ/ns)
//
// Durations are placed on per-engine device timelines (device.h): kernels
// occupy the compute engine, uploads/downloads the H2D/D2H DMA engines,
// so transfers can overlap compute when the command queue allows it.
//
// Cycle counts come from the VM's per-instruction accounting. The one
// deliberately calibrated constant pair is the backend efficiency /
// launch overhead difference between the "CUDA" and "OpenCL" backends:
// the paper (Sec. IV-A, citing Kong et al. [8]) attributes CUDA's edge to
// toolchain maturity, which a functional simulator cannot reproduce from
// first principles. We model it as CUDA retiring VM cycles ~30% faster
// with a lower launch overhead; DESIGN.md documents this substitution.
#pragma once

#include <cstdint>

#include "clc/vm.h"
#include "ocl/device.h"

namespace ocl {

enum class Backend { OpenCL, Cuda };

const char* backendName(Backend backend) noexcept;

struct BackendProfile {
  double efficiency;          // fraction of peak the backend retires
  std::uint64_t launchOverheadNs;
  std::uint64_t enqueueOverheadNs; // host-side cost of an enqueue call

  static BackendProfile forBackend(Backend backend) noexcept;
};

class TimingModel {
public:
  TimingModel(const DeviceSpec& spec, Backend backend) noexcept
      : spec_(spec), profile_(BackendProfile::forBackend(backend)) {}

  /// Duration of a kernel launch with the given execution profile.
  std::uint64_t kernelDurationNs(const clc::LaunchStats& stats) const;

  /// Duration of a host<->device transfer of `bytes` over one PCIe DMA
  /// engine (latency + bytes/bandwidth).
  std::uint64_t transferDurationNs(std::uint64_t bytes) const;

  /// The two components of transferDurationNs, separately: cross-device
  /// copies compose legs from these so the staged transfer pipelines —
  /// max of the legs' wire times plus a single latency — instead of
  /// paying the full latency+wire sum once per leg.
  double transferLatencyNs() const noexcept;
  double transferWireNs(std::uint64_t bytes) const noexcept;

  /// Energy (nanojoules) the device draws above idle while its compute
  /// engine is busy for `busyNs` (1 W = 1 nJ/ns).
  double activeEnergyNj(std::uint64_t busyNs) const noexcept;

  /// Energy (nanojoules) of moving `bytes` across the DMA path.
  double transferEnergyNj(std::uint64_t bytes) const noexcept;

  /// Duration of an on-device buffer-to-buffer copy of `bytes`: runs at
  /// global-memory bandwidth and pays for a read plus a write.
  std::uint64_t deviceCopyDurationNs(std::uint64_t bytes) const;

  /// Host-side cost of submitting one command.
  std::uint64_t enqueueOverheadNs() const noexcept {
    return profile_.enqueueOverheadNs;
  }

private:
  DeviceSpec spec_;
  BackendProfile profile_;
};

} // namespace ocl
