#include "ocl/timing_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ocl {

const char* backendName(Backend backend) noexcept {
  switch (backend) {
    case Backend::OpenCL: return "OpenCL";
    case Backend::Cuda: return "CUDA";
  }
  return "?";
}

BackendProfile BackendProfile::forBackend(Backend backend) noexcept {
  switch (backend) {
    case Backend::Cuda:
      // Mature toolchain: better scheduling/codegen, cheap launches.
      return BackendProfile{1.0, 5'000, 1'000};
    case Backend::OpenCL:
      // The gap the paper observes and attributes to compiler maturity.
      return BackendProfile{1.0 / 1.30, 12'000, 2'000};
  }
  return BackendProfile{1.0, 5'000, 1'000};
}

std::uint64_t TimingModel::kernelDurationNs(
    const clc::LaunchStats& stats) const {
  // Schedule work-groups round-robin onto compute units. Per-CU cycle
  // sums accumulate in double: truncating sumCycles/pes to an integer
  // per work-group systematically under-billed kernels with many groups
  // smaller than one CU's PE width (every group lost up to 1 cycle, and
  // a group with sumCycles < pes and maxCycles == 1 lost its fraction
  // entirely whenever the division rounded to the max anyway).
  const std::size_t cus = std::max<std::size_t>(1, spec_.computeUnits);
  std::vector<double> cuCycles(cus, 0.0);
  const double pes = double(std::max<std::uint32_t>(1, spec_.pesPerUnit));
  for (std::size_t g = 0; g < stats.groups.size(); ++g) {
    const clc::GroupCost& group = stats.groups[g];
    const double throughputCycles = double(group.sumCycles) / pes;
    cuCycles[g % cus] +=
        std::max(throughputCycles, double(group.maxCycles));
  }
  const double critical =
      *std::max_element(cuCycles.begin(), cuCycles.end());

  const double hz = spec_.clockGHz * 1e9 * profile_.efficiency;
  const double computeNs = std::ceil(critical) / hz * 1e9;

  const double bytes =
      double(stats.globalBytesRead + stats.globalBytesWritten);
  const double memNs = bytes / (spec_.memBandwidthGBs * 1e9) * 1e9;

  return profile_.launchOverheadNs +
         std::uint64_t(std::max(computeNs, memNs));
}

std::uint64_t TimingModel::transferDurationNs(std::uint64_t bytes) const {
  return std::uint64_t(transferLatencyNs() + transferWireNs(bytes));
}

double TimingModel::transferLatencyNs() const noexcept {
  return spec_.pcieLatencyUs * 1e3;
}

double TimingModel::transferWireNs(std::uint64_t bytes) const noexcept {
  return double(bytes) / (spec_.pcieBandwidthGBs * 1e9) * 1e9;
}

double TimingModel::activeEnergyNj(std::uint64_t busyNs) const noexcept {
  // 1 W = 1 nJ/ns, so watts x ns is nanojoules directly.
  return (spec_.busyPowerW - spec_.idlePowerW) * double(busyNs);
}

double TimingModel::transferEnergyNj(std::uint64_t bytes) const noexcept {
  return spec_.transferNjPerByte * double(bytes);
}

std::uint64_t TimingModel::deviceCopyDurationNs(std::uint64_t bytes) const {
  const double bw = spec_.memBandwidthGBs * 1e9;
  return std::uint64_t(double(2 * bytes) / bw * 1e9);
}

} // namespace ocl
