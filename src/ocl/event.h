// Events carry the virtual-time profile of one enqueued command,
// mirroring clGetEventProfilingInfo.
#pragma once

#include <cstdint>
#include <memory>

#include "ocl/device.h"

namespace ocl {

struct EventState {
  std::uint64_t queuedNs = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
};

class Event {
public:
  Event() = default;
  explicit Event(std::shared_ptr<const EventState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks the (virtual) host until the command completes: advances the
  /// host clock to the command's end time.
  void wait() const {
    if (state_ != nullptr) {
      syncHostTimeToNs(state_->endNs);
    }
  }

  std::uint64_t queuedNs() const { return state().queuedNs; }
  std::uint64_t startNs() const { return state().startNs; }
  std::uint64_t endNs() const { return state().endNs; }
  std::uint64_t durationNs() const { return state().endNs - state().startNs; }

private:
  const EventState& state() const {
    COMMON_CHECK_MSG(state_ != nullptr, "use of an invalid Event handle");
    return *state_;
  }

  std::shared_ptr<const EventState> state_;
};

} // namespace ocl
