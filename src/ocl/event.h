// Events carry the virtual-time profile of one enqueued command,
// mirroring clGetEventProfilingInfo, plus the engine the command occupied
// (compute, H2D DMA, D2H DMA). Passing events as dependencies to later
// enqueues forms a real dependency DAG: a dependent command starts no
// earlier than the end of every event it waits on, even when the two
// commands occupy different engines or devices.
#pragma once

#include <cstdint>
#include <memory>

#include "ocl/device.h"

namespace ocl {

struct EventState {
  std::uint64_t queuedNs = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
  Engine engine = Engine::Compute;
};

class Event {
public:
  Event() = default;
  explicit Event(std::shared_ptr<const EventState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks the (virtual) host until the command completes: advances the
  /// host clock to the command's end time.
  void wait() const {
    if (state_ != nullptr) {
      syncHostTimeToNs(state_->endNs);
    }
  }

  std::uint64_t queuedNs() const { return state().queuedNs; }
  std::uint64_t startNs() const { return state().startNs; }
  std::uint64_t endNs() const { return state().endNs; }
  std::uint64_t durationNs() const { return state().endNs - state().startNs; }

  /// Which device engine the command ran on.
  Engine engine() const { return state().engine; }

private:
  const EventState& state() const {
    COMMON_CHECK_MSG(state_ != nullptr, "use of an invalid Event handle");
    return *state_;
  }

  std::shared_ptr<const EventState> state_;
};

} // namespace ocl
