// Events carry the virtual-time profile of one enqueued command,
// mirroring clGetEventProfilingInfo, plus the engine the command occupied
// (compute, H2D DMA, D2H DMA). Passing events as dependencies to later
// enqueues forms a real dependency DAG: a dependent command starts no
// earlier than the end of every event it waits on, even when the two
// commands occupy different engines or devices.
#pragma once

#include <cstdint>
#include <memory>

#include "ocl/device.h"

namespace ocl {

/// The four CL_PROFILING_COMMAND_* timestamps of one command, in virtual
/// nanoseconds. Always ordered queued <= submit <= start <= end. In the
/// simulated driver, "submit" is when the host finished the enqueue call
/// (queued + enqueue overhead), clamped to the start time so the
/// real-hardware ordering invariant holds even when the target engine
/// was idle and picked the command up immediately.
struct ProfilingInfo {
  std::uint64_t queuedNs = 0;
  std::uint64_t submitNs = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
};

struct EventState {
  std::uint64_t id = 0; // unique per command since configureSystem
  std::uint64_t queuedNs = 0;
  std::uint64_t submitNs = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
  Engine engine = Engine::Compute;
};

class Event {
public:
  Event() = default;
  explicit Event(std::shared_ptr<const EventState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }

  /// Blocks the (virtual) host until the command completes: advances the
  /// host clock to the command's end time.
  void wait() const {
    if (state_ != nullptr) {
      syncHostTimeToNs(state_->endNs);
    }
  }

  /// Unique id of the command that produced this event (the node id in
  /// trace dependency graphs).
  std::uint64_t commandId() const { return state().id; }

  std::uint64_t queuedNs() const { return state().queuedNs; }
  std::uint64_t submitNs() const { return state().submitNs; }
  std::uint64_t startNs() const { return state().startNs; }
  std::uint64_t endNs() const { return state().endNs; }
  std::uint64_t durationNs() const { return state().endNs - state().startNs; }

  /// All four CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END} timestamps
  /// in one struct (clGetEventProfilingInfo equivalent).
  ProfilingInfo profilingInfo() const {
    const EventState& s = state();
    return ProfilingInfo{s.queuedNs, s.submitNs, s.startNs, s.endNs};
  }

  /// Which device engine the command ran on.
  Engine engine() const { return state().engine; }

private:
  const EventState& state() const {
    COMMON_CHECK_MSG(state_ != nullptr, "use of an invalid Event handle");
    return *state_;
  }

  std::shared_ptr<const EventState> state_;
};

} // namespace ocl
