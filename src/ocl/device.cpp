#include "ocl/device.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "ocl/fault.h"
#include "trace/load_monitor.h"
#include "trace/recorder.h"

namespace ocl {

const char* deviceTypeName(DeviceType type) noexcept {
  switch (type) {
    case DeviceType::GPU: return "GPU";
    case DeviceType::CPU: return "CPU";
    case DeviceType::All: return "ALL";
  }
  return "?";
}

const char* engineName(Engine engine) noexcept {
  switch (engine) {
    case Engine::Compute: return "compute";
    case Engine::HostToDevice: return "h2d";
    case Engine::DeviceToHost: return "d2h";
  }
  return "?";
}

DeviceSpec DeviceSpec::teslaT10() {
  DeviceSpec spec;
  spec.name = "Tesla T10 (simulated)";
  spec.vendor = "NVIDIA (simulated)";
  spec.type = DeviceType::GPU;
  spec.computeUnits = 30;
  spec.pesPerUnit = 8; // 30 SMs x 8 SPs = 240 cores
  spec.clockGHz = 1.44;
  spec.globalMemBytes = 4ull << 30;
  spec.memBandwidthGBs = 102.0;
  spec.pcieLatencyUs = 8.0;
  spec.pcieBandwidthGBs = 5.2;
  spec.maxWorkGroupSize = 512;
  spec.localMemBytes = 16 << 10;
  return spec;
}

DeviceSpec DeviceSpec::xeonE5520() {
  DeviceSpec spec;
  spec.name = "Intel Xeon E5520 (simulated)";
  spec.vendor = "Intel (simulated)";
  spec.type = DeviceType::CPU;
  spec.computeUnits = 4;
  spec.pesPerUnit = 4; // SSE lanes
  spec.clockGHz = 2.26;
  spec.globalMemBytes = 12ull << 30;
  spec.memBandwidthGBs = 25.6;
  spec.pcieLatencyUs = 0.1; // host memory is local
  spec.pcieBandwidthGBs = 12.0;
  spec.maxWorkGroupSize = 1024;
  spec.localMemBytes = 32 << 10;
  return spec;
}

DeviceSpec DeviceSpec::scaled(double factor) const {
  COMMON_EXPECTS(factor > 0.0, "device scale factor must be positive");
  DeviceSpec spec = *this;
  spec.clockGHz *= factor;
  spec.memBandwidthGBs *= factor;
  if (factor != 1.0) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), " @%gx", factor);
    spec.name += suffix;
  }
  return spec;
}

SystemConfig SystemConfig::teslaS1070(std::uint32_t gpus) {
  SystemConfig config;
  config.platformName = "clc-sim OpenCL (Tesla S1070 testbed)";
  for (std::uint32_t i = 0; i < gpus; ++i) {
    config.devices.push_back(DeviceSpec::teslaT10());
  }
  config.devices.push_back(DeviceSpec::xeonE5520());
  return config;
}

namespace {

std::string trimmedLower(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t");
  std::size_t end = s.find_last_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  std::string out = s.substr(begin, end - begin + 1);
  for (char& c : out) {
    c = char(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

[[noreturn]] void badSpec(const std::string& entry, const std::string& why) {
  throw common::InvalidArgument("invalid SKELCL_DEVICES entry '" + entry +
                                "': " + why);
}

/// One spec entry `name['@'SCALE'x']['*'COUNT]`, suffixes in any order.
void parseEntry(const std::string& raw, SystemConfig& config) {
  const std::string entry = trimmedLower(raw);
  if (entry.empty()) {
    badSpec(raw, "empty entry");
  }
  std::string name = entry;
  double scale = 1.0;
  unsigned long count = 1;
  // Peel `@...x` / `*...` suffixes off the tail until only the name is
  // left; each may appear at most once.
  bool sawScale = false, sawCount = false;
  for (;;) {
    const std::size_t at = name.rfind('@');
    const std::size_t star = name.rfind('*');
    const std::size_t cut = std::max(at == std::string::npos ? 0 : at,
                                     star == std::string::npos ? 0 : star);
    if (cut == 0) {
      break;
    }
    const std::string suffix = name.substr(cut + 1);
    if (name[cut] == '@') {
      if (sawScale) {
        badSpec(raw, "duplicate @scale suffix");
      }
      if (suffix.size() < 2 || suffix.back() != 'x') {
        badSpec(raw, "scale must look like @0.5x");
      }
      char* rest = nullptr;
      scale = std::strtod(suffix.c_str(), &rest);
      if (rest != suffix.c_str() + suffix.size() - 1 || !(scale > 0.0)) {
        badSpec(raw, "scale must be a positive number followed by 'x'");
      }
      sawScale = true;
    } else {
      if (sawCount) {
        badSpec(raw, "duplicate *count suffix");
      }
      char* rest = nullptr;
      count = std::strtoul(suffix.c_str(), &rest, 10);
      if (rest != suffix.c_str() + suffix.size() || count == 0) {
        badSpec(raw, "count must be a positive integer");
      }
      sawCount = true;
    }
    name = name.substr(0, cut);
  }
  DeviceSpec base;
  if (name == "t10" || name == "tesla" || name == "gpu") {
    base = DeviceSpec::teslaT10();
  } else if (name == "cpu" || name == "xeon") {
    base = DeviceSpec::xeonE5520();
  } else {
    badSpec(raw, "unknown device name '" + name +
                     "' (expected t10/tesla/gpu or cpu/xeon)");
  }
  const DeviceSpec spec = base.scaled(scale);
  for (unsigned long i = 0; i < count; ++i) {
    config.devices.push_back(spec);
  }
}

} // namespace

SystemConfig SystemConfig::parse(const std::string& spec) {
  SystemConfig config;
  config.platformName = "clc-sim OpenCL (spec: " + spec + ")";
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    parseEntry(spec.substr(begin, end - begin), config);
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  COMMON_EXPECTS(!config.devices.empty(),
                 "SKELCL_DEVICES spec names no devices");
  return config;
}

void DeviceState::allocate(std::uint64_t bytes) {
  if (lost_) {
    throw DeviceLost(index_, "allocation on device " + std::to_string(index_) +
                                 " ('" + spec_.name + "'): device lost");
  }
  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Alloc, spec_.name, index_)) {
      if (fault->deviceLost) {
        lost_ = true;
        throw DeviceLost(index_, "injected device loss during allocation on "
                                 "device " +
                                     std::to_string(index_));
      }
      throw AllocFailure(index_, "injected allocation failure (" +
                                     std::string(statusName(
                                         Status::MemObjectAllocationFailure)) +
                                     ") of " + std::to_string(bytes) +
                                     " bytes on device " +
                                     std::to_string(index_));
    }
  }
  if (allocated_ + bytes > spec_.globalMemBytes) {
    throw AllocFailure(
        index_,
        "device '" + spec_.name + "' out of memory: allocated " +
            std::to_string(allocated_) + " + requested " +
            std::to_string(bytes) + " exceeds " +
            std::to_string(spec_.globalMemBytes),
        Status::OutOfResources);
  }
  allocated_ += bytes;
}

void DeviceState::release(std::uint64_t bytes) noexcept {
  allocated_ = bytes > allocated_ ? 0 : allocated_ - bytes;
}

std::vector<Device> Platform::devices(DeviceType type) const {
  if (type == DeviceType::All) {
    return devices_;
  }
  std::vector<Device> out;
  for (const Device& d : devices_) {
    if (d.type() == type) {
      out.push_back(d);
    }
  }
  return out;
}

namespace {

struct System {
  std::string platformName;
  std::vector<std::shared_ptr<DeviceState>> devices;
  std::atomic<std::uint64_t> hostNs{0};
  std::atomic<std::uint64_t> nextCommandId{0};
};

std::mutex g_systemMutex;
std::unique_ptr<System> g_system;

std::uint64_t hostTimeNsForTrace() noexcept { return hostTimeNs(); }

/// Tells the tracer who the devices are (pid labels in exports) and how
/// to read the virtual clock. Runs on every (re)configuration so traces
/// started at any point see the current machine.
void publishSystemToTracer(const System& sys) {
  trace::setTimeSource(&hostTimeNsForTrace);
  std::vector<trace::DeviceInfo> infos;
  for (const auto& state : sys.devices) {
    infos.push_back({state->index(), state->spec().name});
  }
  trace::Recorder::instance().setDevices(std::move(infos));
}

System& system() {
  {
    std::lock_guard lock(g_systemMutex);
    if (g_system != nullptr) {
      return *g_system;
    }
    g_system = std::make_unique<System>();
    const SystemConfig config = SystemConfig::teslaS1070();
    g_system->platformName = config.platformName;
    for (std::size_t i = 0; i < config.devices.size(); ++i) {
      g_system->devices.push_back(std::make_shared<DeviceState>(
          config.devices[i], std::uint32_t(i)));
    }
    trace::LoadMonitor::instance().reset(config.devices.size());
  }
  publishSystemToTracer(*g_system);
  return *g_system;
}

} // namespace

void configureSystem(const SystemConfig& config) {
  {
    std::lock_guard lock(g_systemMutex);
    g_system = std::make_unique<System>();
    g_system->platformName = config.platformName;
    for (std::size_t i = 0; i < config.devices.size(); ++i) {
      g_system->devices.push_back(std::make_shared<DeviceState>(
          config.devices[i], std::uint32_t(i)));
    }
    trace::LoadMonitor::instance().reset(config.devices.size());
  }
  publishSystemToTracer(*g_system);
}

std::vector<Platform> getPlatforms() {
  System& sys = system();
  std::vector<Device> devices;
  for (const auto& state : sys.devices) {
    devices.emplace_back(state);
  }
  return {Platform(sys.platformName, std::move(devices))};
}

std::uint64_t hostTimeNs() { return system().hostNs.load(); }

void advanceHostTimeNs(std::uint64_t ns) { system().hostNs.fetch_add(ns); }

void syncHostTimeToNs(std::uint64_t ns) {
  auto& clock = system().hostNs;
  std::uint64_t current = clock.load();
  while (current < ns && !clock.compare_exchange_weak(current, ns)) {
  }
}

std::uint64_t nextCommandId() {
  return system().nextCommandId.fetch_add(1) + 1;
}

} // namespace ocl
