#include "ocl/device.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "ocl/fault.h"
#include "trace/load_monitor.h"
#include "trace/recorder.h"

namespace ocl {

const char* deviceTypeName(DeviceType type) noexcept {
  switch (type) {
    case DeviceType::GPU: return "GPU";
    case DeviceType::CPU: return "CPU";
    case DeviceType::All: return "ALL";
  }
  return "?";
}

const char* engineName(Engine engine) noexcept {
  switch (engine) {
    case Engine::Compute: return "compute";
    case Engine::HostToDevice: return "h2d";
    case Engine::DeviceToHost: return "d2h";
  }
  return "?";
}

DeviceSpec DeviceSpec::teslaT10() {
  DeviceSpec spec;
  spec.name = "Tesla T10 (simulated)";
  spec.vendor = "NVIDIA (simulated)";
  spec.type = DeviceType::GPU;
  spec.computeUnits = 30;
  spec.pesPerUnit = 8; // 30 SMs x 8 SPs = 240 cores
  spec.clockGHz = 1.44;
  spec.globalMemBytes = 4ull << 30;
  spec.memBandwidthGBs = 102.0;
  spec.pcieLatencyUs = 8.0;
  spec.pcieBandwidthGBs = 5.2;
  spec.maxWorkGroupSize = 512;
  spec.localMemBytes = 16 << 10;
  // One quarter of the S1070's 800 W board: ~60 W idle, ~200 W busy.
  spec.idlePowerW = 60.0;
  spec.busyPowerW = 200.0;
  spec.transferNjPerByte = 0.5;
  return spec;
}

DeviceSpec DeviceSpec::xeonE5520() {
  DeviceSpec spec;
  spec.name = "Intel Xeon E5520 (simulated)";
  spec.vendor = "Intel (simulated)";
  spec.type = DeviceType::CPU;
  spec.computeUnits = 4;
  spec.pesPerUnit = 4; // SSE lanes
  spec.clockGHz = 2.26;
  spec.globalMemBytes = 12ull << 30;
  spec.memBandwidthGBs = 25.6;
  spec.pcieLatencyUs = 0.1; // host memory is local
  spec.pcieBandwidthGBs = 12.0;
  spec.maxWorkGroupSize = 1024;
  spec.localMemBytes = 32 << 10;
  // Nehalem-era quad core: 80 W TDP, ~15 W idle.
  spec.idlePowerW = 15.0;
  spec.busyPowerW = 80.0;
  spec.transferNjPerByte = 0.25;
  return spec;
}

DeviceSpec DeviceSpec::scaled(double factor) const {
  COMMON_EXPECTS(factor > 0.0, "device scale factor must be positive");
  DeviceSpec spec = *this;
  spec.clockGHz *= factor;
  spec.memBandwidthGBs *= factor;
  spec.busyPowerW *= factor;
  spec.scale *= factor;
  // Regenerate the single " @Nx" suffix from the *composed* factor (the
  // unscaled base name is this name minus any existing suffix), so
  // repeated scaling stays idempotent: scaled(0.5).scaled(2.0) returns
  // the clean base spec, never "name @0.5x @2x".
  const std::size_t at = spec.name.rfind(" @");
  if (at != std::string::npos && spec.name.back() == 'x') {
    spec.name.erase(at);
  }
  if (spec.scale != 1.0) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), " @%gx", spec.scale);
    spec.name += suffix;
  }
  return spec;
}

InterconnectSpec InterconnectSpec::infiniband() {
  InterconnectSpec spec;
  spec.name = "ib";
  spec.latencyUs = 2.0;
  spec.bandwidthGBs = 4.0; // QDR InfiniBand, 32 Gbit/s effective
  return spec;
}

InterconnectSpec InterconnectSpec::ethernet() {
  InterconnectSpec spec;
  spec.name = "eth";
  spec.latencyUs = 50.0;
  spec.bandwidthGBs = 1.25; // 10GbE
  return spec;
}

std::uint32_t SystemConfig::nodeCount() const noexcept {
  std::uint32_t count = devices.empty() ? 0 : 1;
  for (std::uint32_t node : nodeOf) {
    count = std::max(count, node + 1);
  }
  return count;
}

SystemConfig SystemConfig::teslaS1070(std::uint32_t gpus) {
  SystemConfig config;
  config.platformName = "clc-sim OpenCL (Tesla S1070 testbed)";
  for (std::uint32_t i = 0; i < gpus; ++i) {
    config.devices.push_back(DeviceSpec::teslaT10());
  }
  config.devices.push_back(DeviceSpec::xeonE5520());
  return config;
}

namespace {

std::string trimmedLower(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t");
  std::size_t end = s.find_last_not_of(" \t");
  if (begin == std::string::npos) {
    return "";
  }
  std::string out = s.substr(begin, end - begin + 1);
  for (char& c : out) {
    c = char(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

[[noreturn]] void badSpec(const std::string& entry, const std::string& why) {
  throw common::InvalidArgument("invalid SKELCL_DEVICES entry '" + entry +
                                "': " + why);
}

/// One spec entry `name['@'SCALE'x']['*'COUNT]`, suffixes in any order.
void parseEntry(const std::string& raw, SystemConfig& config) {
  const std::string entry = trimmedLower(raw);
  if (entry.empty()) {
    badSpec(raw, "empty entry");
  }
  std::string name = entry;
  double scale = 1.0;
  unsigned long count = 1;
  // Peel `@...x` / `*...` suffixes off the tail until only the name is
  // left; each may appear at most once.
  bool sawScale = false, sawCount = false;
  for (;;) {
    const std::size_t at = name.rfind('@');
    const std::size_t star = name.rfind('*');
    const std::size_t cut = std::max(at == std::string::npos ? 0 : at,
                                     star == std::string::npos ? 0 : star);
    if (cut == 0) {
      break;
    }
    const std::string suffix = name.substr(cut + 1);
    if (name[cut] == '@') {
      if (sawScale) {
        badSpec(raw, "duplicate @scale suffix");
      }
      if (suffix.size() < 2 || suffix.back() != 'x') {
        badSpec(raw, "scale must look like @0.5x");
      }
      char* rest = nullptr;
      scale = std::strtod(suffix.c_str(), &rest);
      if (rest != suffix.c_str() + suffix.size() - 1 || !(scale > 0.0)) {
        badSpec(raw, "scale must be a positive number followed by 'x'");
      }
      sawScale = true;
    } else {
      if (sawCount) {
        badSpec(raw, "duplicate *count suffix");
      }
      char* rest = nullptr;
      count = std::strtoul(suffix.c_str(), &rest, 10);
      if (rest != suffix.c_str() + suffix.size() || count == 0) {
        badSpec(raw, "count must be a positive integer");
      }
      sawCount = true;
    }
    name = name.substr(0, cut);
  }
  DeviceSpec base;
  if (name == "t10" || name == "tesla" || name == "gpu") {
    base = DeviceSpec::teslaT10();
  } else if (name == "cpu" || name == "xeon") {
    base = DeviceSpec::xeonE5520();
  } else {
    badSpec(raw, "unknown device name '" + name +
                     "' (expected t10/tesla/gpu or cpu/xeon)");
  }
  const DeviceSpec spec = base.scaled(scale);
  for (unsigned long i = 0; i < count; ++i) {
    config.devices.push_back(spec);
  }
}

/// Splits a spec on top-level commas only: commas inside `node(...)`
/// parentheses belong to the inner device list.
std::vector<std::string> splitTopLevel(const std::string& spec) {
  std::vector<std::string> entries;
  std::string current;
  int depth = 0;
  for (char c : spec) {
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (depth == 0) {
        throw common::InvalidArgument(
            "invalid SKELCL_DEVICES spec '" + spec + "': unmatched ')'");
      }
      --depth;
    } else if (c == ',' && depth == 0) {
      entries.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (depth != 0) {
    throw common::InvalidArgument("invalid SKELCL_DEVICES spec '" + spec +
                                  "': unmatched '('");
  }
  entries.push_back(current);
  return entries;
}

/// One cluster entry `node(<inner>)['*'COUNT]['@'TIER|'@'SCALE'x']`,
/// suffixes in any order. Appends the node's devices `count` times and
/// records their node indices; returns the tier this entry named (empty
/// when it relied on the default).
std::string parseNodeEntry(const std::string& raw, SystemConfig& config) {
  const std::string entry = trimmedLower(raw);
  const std::size_t open = entry.find('(');
  const std::size_t close = entry.rfind(')');
  COMMON_CHECK(open != std::string::npos && close != std::string::npos &&
               open < close);
  if (entry.substr(0, open) != "node") {
    badSpec(raw, "expected node(...), got '" + entry.substr(0, open) + "(...'");
  }
  const std::string inner = entry.substr(open + 1, close - open - 1);
  if (trimmedLower(inner).empty()) {
    badSpec(raw, "node with zero devices (token '" + entry + "')");
  }
  if (inner.find("node") != std::string::npos) {
    badSpec(raw, "nodes do not nest");
  }
  // Peel `*COUNT` / `@TIER` / `@SCALEx` suffixes off the tail, each at
  // most once — same discipline as the device-entry suffixes.
  std::string tail = entry.substr(close + 1);
  unsigned long count = 1;
  double scale = 1.0;
  std::string tier;
  bool sawScale = false, sawCount = false;
  while (!tail.empty()) {
    const std::size_t at = tail.rfind('@');
    const std::size_t star = tail.rfind('*');
    const std::size_t cut = std::max(at == std::string::npos ? 0 : at,
                                     star == std::string::npos ? 0 : star);
    if (tail[cut] != '@' && tail[cut] != '*') {
      badSpec(raw, "junk after node(...): '" + tail + "'");
    }
    const std::string suffix = tail.substr(cut + 1);
    if (tail[cut] == '@') {
      if (suffix.size() >= 2 && suffix.back() == 'x') {
        if (sawScale) {
          badSpec(raw, "duplicate @scale suffix");
        }
        char* rest = nullptr;
        scale = std::strtod(suffix.c_str(), &rest);
        if (rest != suffix.c_str() + suffix.size() - 1 || !(scale > 0.0)) {
          badSpec(raw, "scale must be a positive number followed by 'x'");
        }
        sawScale = true;
      } else if (suffix == "ib" || suffix == "eth") {
        if (!tier.empty()) {
          badSpec(raw, "duplicate @tier suffix");
        }
        tier = suffix;
      } else {
        badSpec(raw, "unknown node suffix '@" + suffix +
                         "' (expected @ib, @eth, or @0.5x)");
      }
    } else {
      if (sawCount) {
        badSpec(raw, "duplicate *count suffix");
      }
      char* rest = nullptr;
      count = std::strtoul(suffix.c_str(), &rest, 10);
      if (rest != suffix.c_str() + suffix.size() || count == 0) {
        badSpec(raw, "count must be a positive integer");
      }
      sawCount = true;
    }
    tail = tail.substr(0, cut);
  }
  // The inner list is an ordinary single-node spec; scale applies to
  // every device of the node.
  SystemConfig innerConfig;
  for (const std::string& deviceEntry : splitTopLevel(inner)) {
    parseEntry(deviceEntry, innerConfig);
  }
  for (unsigned long i = 0; i < count; ++i) {
    const auto node = std::uint32_t(config.nodeOf.empty()
                                        ? 0
                                        : config.nodeOf.back() + 1);
    for (const DeviceSpec& device : innerConfig.devices) {
      config.devices.push_back(device.scaled(scale));
      config.nodeOf.push_back(node);
    }
  }
  return tier;
}

} // namespace

SystemConfig SystemConfig::parse(const std::string& spec) {
  SystemConfig config;
  config.platformName = "clc-sim OpenCL (spec: " + spec + ")";
  const std::vector<std::string> entries = splitTopLevel(spec);
  bool sawNode = false, sawBare = false;
  std::string tier;
  for (const std::string& raw : entries) {
    const std::string entry = trimmedLower(raw);
    if (entry.rfind("node", 0) == 0 && entry.find('(') != std::string::npos) {
      sawNode = true;
      const std::string entryTier = parseNodeEntry(raw, config);
      if (!entryTier.empty()) {
        if (!tier.empty() && tier != entryTier) {
          badSpec(raw, "conflicting interconnect tiers '@" + tier +
                           "' and '@" + entryTier +
                           "' (one network joins all nodes)");
        }
        tier = entryTier;
      }
    } else {
      sawBare = true;
      parseEntry(raw, config);
    }
  }
  if (sawNode && sawBare) {
    throw common::InvalidArgument(
        "invalid SKELCL_DEVICES spec '" + spec +
        "': node(...) entries and bare device entries must not mix");
  }
  if (sawNode) {
    config.interconnect = tier == "eth" ? InterconnectSpec::ethernet()
                                        : InterconnectSpec::infiniband();
  }
  COMMON_EXPECTS(!config.devices.empty(),
                 "SKELCL_DEVICES spec names no devices");
  return config;
}

void DeviceState::allocate(std::uint64_t bytes) {
  if (lost_) {
    throw DeviceLost(index_, "allocation on device " + std::to_string(index_) +
                                 " ('" + spec_.name + "'): device lost");
  }
  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Alloc, spec_.name, index_)) {
      if (fault->deviceLost) {
        lost_ = true;
        throw DeviceLost(index_, "injected device loss during allocation on "
                                 "device " +
                                     std::to_string(index_));
      }
      throw AllocFailure(index_, "injected allocation failure (" +
                                     std::string(statusName(
                                         Status::MemObjectAllocationFailure)) +
                                     ") of " + std::to_string(bytes) +
                                     " bytes on device " +
                                     std::to_string(index_));
    }
  }
  if (allocated_ + bytes > spec_.globalMemBytes) {
    throw AllocFailure(
        index_,
        "device '" + spec_.name + "' out of memory: allocated " +
            std::to_string(allocated_) + " + requested " +
            std::to_string(bytes) + " exceeds " +
            std::to_string(spec_.globalMemBytes),
        Status::OutOfResources);
  }
  allocated_ += bytes;
}

void DeviceState::release(std::uint64_t bytes) noexcept {
  allocated_ = bytes > allocated_ ? 0 : allocated_ - bytes;
}

std::vector<Device> Platform::devices(DeviceType type) const {
  if (type == DeviceType::All) {
    return devices_;
  }
  std::vector<Device> out;
  for (const Device& d : devices_) {
    if (d.type() == type) {
      out.push_back(d);
    }
  }
  return out;
}

namespace {

struct System {
  std::string platformName;
  std::vector<std::shared_ptr<DeviceState>> devices;
  std::vector<std::shared_ptr<NodeState>> nodes;
  std::atomic<std::uint64_t> hostNs{0};
  std::atomic<std::uint64_t> nextCommandId{0};
};

std::mutex g_systemMutex;
std::unique_ptr<System> g_system;

std::uint64_t hostTimeNsForTrace() noexcept { return hostTimeNs(); }

/// Tells the tracer who the devices are (pid labels in exports, node and
/// power columns in skeltrace) and how to read the virtual clock. Runs
/// on every (re)configuration so traces started at any point see the
/// current machine.
void publishSystemToTracer(const System& sys) {
  trace::setTimeSource(&hostTimeNsForTrace);
  std::vector<trace::DeviceInfo> infos;
  for (const auto& state : sys.devices) {
    trace::DeviceInfo info;
    info.index = state->index();
    info.name = state->spec().name;
    info.node = state->node();
    info.idlePowerW = state->spec().idlePowerW;
    info.busyPowerW = state->spec().busyPowerW;
    info.transferNjPerByte = state->spec().transferNjPerByte;
    infos.push_back(std::move(info));
  }
  trace::Recorder::instance().setDevices(std::move(infos));
}

/// Builds the live state from a config: one NodeState per node (all
/// sharing the config's interconnect), one DeviceState per device wired
/// to its node's link.
void buildSystem(System& sys, const SystemConfig& config) {
  COMMON_EXPECTS(config.nodeOf.empty() ||
                     config.nodeOf.size() == config.devices.size(),
                 "SystemConfig.nodeOf must be empty or parallel to devices");
  sys.platformName = config.platformName;
  const std::uint32_t nodeCount = config.nodeCount();
  for (std::uint32_t n = 0; n < nodeCount; ++n) {
    sys.nodes.push_back(
        std::make_shared<NodeState>(n, config.interconnect));
  }
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    const std::uint32_t node =
        i < config.nodeOf.size() ? config.nodeOf[i] : 0;
    COMMON_EXPECTS(node < nodeCount, "device node index out of range");
    sys.devices.push_back(std::make_shared<DeviceState>(
        config.devices[i], std::uint32_t(i), node, sys.nodes[node]));
  }
  trace::LoadMonitor::instance().reset(config.devices.size());
}

System& system() {
  {
    std::lock_guard lock(g_systemMutex);
    if (g_system != nullptr) {
      return *g_system;
    }
    g_system = std::make_unique<System>();
    buildSystem(*g_system, SystemConfig::teslaS1070());
  }
  publishSystemToTracer(*g_system);
  return *g_system;
}

} // namespace

void configureSystem(const SystemConfig& config) {
  {
    std::lock_guard lock(g_systemMutex);
    g_system = std::make_unique<System>();
    buildSystem(*g_system, config);
  }
  publishSystemToTracer(*g_system);
}

std::vector<Platform> getPlatforms() {
  System& sys = system();
  std::vector<Device> devices;
  for (const auto& state : sys.devices) {
    devices.emplace_back(state);
  }
  return {Platform(sys.platformName, std::move(devices))};
}

std::uint64_t hostTimeNs() { return system().hostNs.load(); }

void advanceHostTimeNs(std::uint64_t ns) { system().hostNs.fetch_add(ns); }

void syncHostTimeToNs(std::uint64_t ns) {
  auto& clock = system().hostNs;
  std::uint64_t current = clock.load();
  while (current < ns && !clock.compare_exchange_weak(current, ns)) {
  }
}

std::uint64_t nextCommandId() {
  return system().nextCommandId.fetch_add(1) + 1;
}

} // namespace ocl
