#include "ocl/device.h"

#include <atomic>
#include <mutex>

#include "ocl/fault.h"
#include "trace/recorder.h"

namespace ocl {

const char* deviceTypeName(DeviceType type) noexcept {
  switch (type) {
    case DeviceType::GPU: return "GPU";
    case DeviceType::CPU: return "CPU";
    case DeviceType::All: return "ALL";
  }
  return "?";
}

const char* engineName(Engine engine) noexcept {
  switch (engine) {
    case Engine::Compute: return "compute";
    case Engine::HostToDevice: return "h2d";
    case Engine::DeviceToHost: return "d2h";
  }
  return "?";
}

DeviceSpec DeviceSpec::teslaT10() {
  DeviceSpec spec;
  spec.name = "Tesla T10 (simulated)";
  spec.vendor = "NVIDIA (simulated)";
  spec.type = DeviceType::GPU;
  spec.computeUnits = 30;
  spec.pesPerUnit = 8; // 30 SMs x 8 SPs = 240 cores
  spec.clockGHz = 1.44;
  spec.globalMemBytes = 4ull << 30;
  spec.memBandwidthGBs = 102.0;
  spec.pcieLatencyUs = 8.0;
  spec.pcieBandwidthGBs = 5.2;
  spec.maxWorkGroupSize = 512;
  spec.localMemBytes = 16 << 10;
  return spec;
}

DeviceSpec DeviceSpec::xeonE5520() {
  DeviceSpec spec;
  spec.name = "Intel Xeon E5520 (simulated)";
  spec.vendor = "Intel (simulated)";
  spec.type = DeviceType::CPU;
  spec.computeUnits = 4;
  spec.pesPerUnit = 4; // SSE lanes
  spec.clockGHz = 2.26;
  spec.globalMemBytes = 12ull << 30;
  spec.memBandwidthGBs = 25.6;
  spec.pcieLatencyUs = 0.1; // host memory is local
  spec.pcieBandwidthGBs = 12.0;
  spec.maxWorkGroupSize = 1024;
  spec.localMemBytes = 32 << 10;
  return spec;
}

SystemConfig SystemConfig::teslaS1070(std::uint32_t gpus) {
  SystemConfig config;
  config.platformName = "clc-sim OpenCL (Tesla S1070 testbed)";
  for (std::uint32_t i = 0; i < gpus; ++i) {
    config.devices.push_back(DeviceSpec::teslaT10());
  }
  config.devices.push_back(DeviceSpec::xeonE5520());
  return config;
}

void DeviceState::allocate(std::uint64_t bytes) {
  if (lost_) {
    throw DeviceLost(index_, "allocation on device " + std::to_string(index_) +
                                 " ('" + spec_.name + "'): device lost");
  }
  if (FaultInjector::enabled()) {
    if (const auto fault = FaultInjector::instance().check(
            FaultSite::Alloc, spec_.name, index_)) {
      if (fault->deviceLost) {
        lost_ = true;
        throw DeviceLost(index_, "injected device loss during allocation on "
                                 "device " +
                                     std::to_string(index_));
      }
      throw AllocFailure(index_, "injected allocation failure (" +
                                     std::string(statusName(
                                         Status::MemObjectAllocationFailure)) +
                                     ") of " + std::to_string(bytes) +
                                     " bytes on device " +
                                     std::to_string(index_));
    }
  }
  if (allocated_ + bytes > spec_.globalMemBytes) {
    throw AllocFailure(
        index_,
        "device '" + spec_.name + "' out of memory: allocated " +
            std::to_string(allocated_) + " + requested " +
            std::to_string(bytes) + " exceeds " +
            std::to_string(spec_.globalMemBytes),
        Status::OutOfResources);
  }
  allocated_ += bytes;
}

void DeviceState::release(std::uint64_t bytes) noexcept {
  allocated_ = bytes > allocated_ ? 0 : allocated_ - bytes;
}

std::vector<Device> Platform::devices(DeviceType type) const {
  if (type == DeviceType::All) {
    return devices_;
  }
  std::vector<Device> out;
  for (const Device& d : devices_) {
    if (d.type() == type) {
      out.push_back(d);
    }
  }
  return out;
}

namespace {

struct System {
  std::string platformName;
  std::vector<std::shared_ptr<DeviceState>> devices;
  std::atomic<std::uint64_t> hostNs{0};
  std::atomic<std::uint64_t> nextCommandId{0};
};

std::mutex g_systemMutex;
std::unique_ptr<System> g_system;

std::uint64_t hostTimeNsForTrace() noexcept { return hostTimeNs(); }

/// Tells the tracer who the devices are (pid labels in exports) and how
/// to read the virtual clock. Runs on every (re)configuration so traces
/// started at any point see the current machine.
void publishSystemToTracer(const System& sys) {
  trace::setTimeSource(&hostTimeNsForTrace);
  std::vector<trace::DeviceInfo> infos;
  for (const auto& state : sys.devices) {
    infos.push_back({state->index(), state->spec().name});
  }
  trace::Recorder::instance().setDevices(std::move(infos));
}

System& system() {
  {
    std::lock_guard lock(g_systemMutex);
    if (g_system != nullptr) {
      return *g_system;
    }
    g_system = std::make_unique<System>();
    const SystemConfig config = SystemConfig::teslaS1070();
    g_system->platformName = config.platformName;
    for (std::size_t i = 0; i < config.devices.size(); ++i) {
      g_system->devices.push_back(std::make_shared<DeviceState>(
          config.devices[i], std::uint32_t(i)));
    }
  }
  publishSystemToTracer(*g_system);
  return *g_system;
}

} // namespace

void configureSystem(const SystemConfig& config) {
  {
    std::lock_guard lock(g_systemMutex);
    g_system = std::make_unique<System>();
    g_system->platformName = config.platformName;
    for (std::size_t i = 0; i < config.devices.size(); ++i) {
      g_system->devices.push_back(std::make_shared<DeviceState>(
          config.devices[i], std::uint32_t(i)));
    }
  }
  publishSystemToTracer(*g_system);
}

std::vector<Platform> getPlatforms() {
  System& sys = system();
  std::vector<Device> devices;
  for (const auto& state : sys.devices) {
    devices.emplace_back(state);
  }
  return {Platform(sys.platformName, std::move(devices))};
}

std::uint64_t hostTimeNs() { return system().hostNs.load(); }

void advanceHostTimeNs(std::uint64_t ns) { system().hostNs.fetch_add(ns); }

void syncHostTimeToNs(std::uint64_t ns) {
  auto& clock = system().hostNs;
  std::uint64_t current = clock.load();
  while (current < ns && !clock.compare_exchange_weak(current, ns)) {
  }
}

std::uint64_t nextCommandId() {
  return system().nextCommandId.fetch_add(1) + 1;
}

} // namespace ocl
