// Simulated OpenCL platform & device model.
//
// The "machine" the runtime exposes is configurable: tests and benchmarks
// instantiate the paper's testbed (a Tesla S1070 — four Tesla T10 GPUs —
// attached to a Xeon E5520 host) or any other topology. Each device owns
// three virtual hardware timelines — one per engine: the compute engine
// and the two DMA engines (host→device, device→host), mirroring the
// dual-copy-engine design of real discrete GPUs. Commands on different
// engines of the same device may overlap in virtual time; commands on the
// same engine execute FIFO. The timing model (timing_model.h) converts
// executed work into nanoseconds on those timelines.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace ocl {

enum class DeviceType { GPU, CPU, All };

const char* deviceTypeName(DeviceType type) noexcept;

/// The hardware engines of one simulated device. A discrete GPU executes
/// kernels and DMA transfers on separate units: commands occupying
/// different engines overlap in virtual time, commands on the same
/// engine serialize FIFO.
enum class Engine : std::uint8_t {
  Compute = 0,      // kernel launches and on-device copies
  HostToDevice = 1, // upload DMA (enqueueWriteBuffer, copy-in)
  DeviceToHost = 2, // download DMA (enqueueReadBuffer, copy-out)
};

inline constexpr std::size_t kEngineCount = 3;

const char* engineName(Engine engine) noexcept;

/// Static description of a device's hardware capabilities.
struct DeviceSpec {
  std::string name = "Simulated Device";
  std::string vendor = "clc-sim";
  DeviceType type = DeviceType::GPU;
  std::uint32_t computeUnits = 30;   // CUs (SMs)
  std::uint32_t pesPerUnit = 8;      // processing elements per CU
  double clockGHz = 1.44;            // PE clock
  std::uint64_t globalMemBytes = 4ull << 30;
  double memBandwidthGBs = 102.0;    // on-device global memory bandwidth
  double pcieLatencyUs = 8.0;        // host<->device transfer latency
  double pcieBandwidthGBs = 5.2;     // host<->device bandwidth
  std::uint32_t maxWorkGroupSize = 512;
  std::uint64_t localMemBytes = 16 << 10;
  double idlePowerW = 50.0;     // board power while present but idle
  double busyPowerW = 180.0;    // board power with the compute engine busy
  double transferNjPerByte = 0.5; // DMA energy per byte moved on/off device
  /// Cumulative factor applied by scaled(); 1.0 = the unscaled preset.
  /// Tracked so repeated scaling composes multiplicatively instead of
  /// stacking name suffixes.
  double scale = 1.0;

  /// One GPU of the NVIDIA Tesla S1070 computing system used in the
  /// paper's evaluation: 240 streaming processor cores @ 1.44 GHz,
  /// 4 GB @ 102 GB/s.
  static DeviceSpec teslaT10();

  /// The paper's host CPU (Intel Xeon E5520, 2.26 GHz quad core), exposed
  /// as an OpenCL CPU device.
  static DeviceSpec xeonE5520();

  /// Peak compute throughput in cycles per nanosecond (CUs x PEs x
  /// clock). The relative magnitudes drive the `static` weight mode of
  /// SkelCL's block distribution.
  double peakCyclesPerNs() const noexcept {
    return double(computeUnits) * double(pesPerUnit) * clockGHz;
  }

  /// A slower/faster variant of this device: compute clock, memory
  /// bandwidth, and busy power scale by `factor` (PCIe latency/bandwidth
  /// stay — the bus does not change with the silicon). Used by the
  /// `name@0.5x` syntax of SKELCL_DEVICES specs. Composition is
  /// predictable: factors multiply into `scale` and the single " @Nx"
  /// name suffix is regenerated from the composed factor, so
  /// `spec.scaled(0.5).scaled(2.0)` is exactly the unscaled spec.
  DeviceSpec scaled(double factor) const;
};

/// The simulated network joining the nodes of a multi-node machine.
/// Distinct from PCIe: a cross-node copy pays this latency and streams
/// at this bandwidth on top of the PCIe legs at each end.
struct InterconnectSpec {
  std::string name = "local"; // "ib" / "eth" for the spec'd tiers
  double latencyUs = 0.0;
  double bandwidthGBs = 0.0; // 0 = single-node machine, no network

  /// QDR InfiniBand of the paper's era: ~2 us latency, ~4 GB/s.
  static InterconnectSpec infiniband();
  /// 10-gigabit Ethernet: ~50 us latency, ~1.25 GB/s.
  static InterconnectSpec ethernet();
};

/// Live per-node link (NIC) state: one virtual timeline per direction,
/// shared by every device of the node. Cross-node copies occupy the
/// source node's egress and the destination node's ingress, so traffic
/// between the same node pair contends for the wire while traffic
/// between disjoint pairs overlaps.
class NodeState {
public:
  explicit NodeState(std::uint32_t node, InterconnectSpec interconnect)
      : node_(node), interconnect_(std::move(interconnect)) {}

  std::uint32_t node() const noexcept { return node_; }
  const InterconnectSpec& interconnect() const noexcept {
    return interconnect_;
  }

  std::uint64_t egressReadyNs() const noexcept { return egressReadyNs_; }
  std::uint64_t ingressReadyNs() const noexcept { return ingressReadyNs_; }
  void setEgressReadyNs(std::uint64_t t) noexcept { egressReadyNs_ = t; }
  void setIngressReadyNs(std::uint64_t t) noexcept { ingressReadyNs_ = t; }

private:
  std::uint32_t node_;
  InterconnectSpec interconnect_;
  std::uint64_t egressReadyNs_ = 0;
  std::uint64_t ingressReadyNs_ = 0;
};

/// Live per-device simulation state: allocation tracking + one virtual
/// timeline per engine. Shared by all handles to the same device.
class DeviceState {
public:
  explicit DeviceState(DeviceSpec spec, std::uint32_t index,
                       std::uint32_t node = 0,
                       std::shared_ptr<NodeState> link = nullptr)
      : spec_(std::move(spec)), index_(index), node_(node),
        link_(std::move(link)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }
  std::uint32_t index() const noexcept { return index_; }

  /// Which node of the simulated cluster hosts this device (0 on a
  /// single-node machine).
  std::uint32_t node() const noexcept { return node_; }
  /// The hosting node's link state; null on machines configured without
  /// node structure (every device then shares node 0 with no network).
  const std::shared_ptr<NodeState>& link() const noexcept { return link_; }

  /// When the given engine finishes its last scheduled command.
  std::uint64_t readyTimeNs(Engine engine) const noexcept {
    return engineReadyNs_[std::size_t(engine)];
  }
  void setReadyTimeNs(Engine engine, std::uint64_t t) noexcept {
    engineReadyNs_[std::size_t(engine)] = t;
  }

  /// When the whole device goes idle: max over all three engines.
  std::uint64_t readyTimeNs() const noexcept {
    std::uint64_t ready = 0;
    for (std::uint64_t t : engineReadyNs_) {
      ready = ready < t ? t : ready;
    }
    return ready;
  }

  std::uint64_t allocatedBytes() const noexcept { return allocated_; }
  void allocate(std::uint64_t bytes);
  void release(std::uint64_t bytes) noexcept;

  /// Device-lost simulation (CL_DEVICE_NOT_AVAILABLE): once marked lost
  /// — organically or by an injected fault — every later allocation and
  /// enqueue targeting the device throws DeviceLost. Cleared only by
  /// configureSystem (which builds fresh DeviceStates).
  bool lost() const noexcept { return lost_; }
  void markLost() noexcept { lost_ = true; }

private:
  DeviceSpec spec_;
  std::uint32_t index_;
  std::uint32_t node_ = 0;
  std::shared_ptr<NodeState> link_;
  std::uint64_t engineReadyNs_[kEngineCount] = {0, 0, 0};
  std::uint64_t allocated_ = 0;
  bool lost_ = false;
};

/// Lightweight device handle (copyable; equality = same device).
class Device {
public:
  Device() = default;
  explicit Device(std::shared_ptr<DeviceState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  const DeviceSpec& spec() const { return state().spec(); }
  const std::string& name() const { return state().spec().name; }
  DeviceType type() const { return state().spec().type; }
  std::uint32_t index() const { return state().index(); }
  std::uint32_t node() const { return state().node(); }
  std::uint64_t globalMemBytes() const { return state().spec().globalMemBytes; }
  std::uint32_t maxWorkGroupSize() const {
    return state().spec().maxWorkGroupSize;
  }

  DeviceState& state() const {
    COMMON_CHECK_MSG(state_ != nullptr, "use of an invalid Device handle");
    return *state_;
  }

  friend bool operator==(const Device& a, const Device& b) noexcept {
    return a.state_ == b.state_;
  }

private:
  std::shared_ptr<DeviceState> state_;
};

/// Description of the simulated machine — one node, or a cluster of
/// nodes joined by a simulated interconnect.
struct SystemConfig {
  std::string platformName = "clc-sim OpenCL (simulated)";
  std::vector<DeviceSpec> devices;
  /// Node index per device, parallel to `devices`. Empty = every device
  /// on node 0 (the single-node machines every pre-cluster spec built).
  std::vector<std::uint32_t> nodeOf;
  /// The network joining the nodes; the default "local" spec means no
  /// network (single-node machine).
  InterconnectSpec interconnect;

  /// Number of nodes described (>= 1 whenever devices exist).
  std::uint32_t nodeCount() const noexcept;

  /// The paper's testbed: 4x Tesla T10 GPUs + the Xeon host CPU device.
  static SystemConfig teslaS1070(std::uint32_t gpus = 4);

  /// Builds a (possibly heterogeneous, possibly multi-node) machine from
  /// a SKELCL_DEVICES spec. Single-node form: comma-separated entries
  /// `name['@'SCALE'x']['*'COUNT]` (the two suffixes compose in either
  /// order). Names: `t10`/`tesla`/`gpu` (Tesla T10), `cpu`/`xeon` (Xeon
  /// E5520). `@0.5x` scales compute clock and memory bandwidth, `*2`
  /// repeats the entry. Example: `t10*2,t10@0.5x,cpu` = two full-speed
  /// T10s, one half-speed T10, and the host CPU device.
  ///
  /// Cluster form: entries `node(<inner>)['*'COUNT]['@'TIER|'@'SCALE'x']`
  /// where `<inner>` is a single-node spec, `*2` repeats the whole node,
  /// `@ib`/`@eth` picks the interconnect tier (InfiniBand / 10GbE; all
  /// entries must agree, default ib), and `@0.5x` scales every device of
  /// the node. Example: `node(t10*4)*2@ib` = two 4-GPU nodes on
  /// InfiniBand. Node and bare-device entries must not mix, a node must
  /// contain at least one device, and nodes do not nest. Throws
  /// common::InvalidArgument on malformed specs (strict: a typo must not
  /// silently configure a different machine).
  static SystemConfig parse(const std::string& spec);
};

class Platform {
public:
  Platform(std::string name, std::vector<Device> devices)
      : name_(std::move(name)), devices_(std::move(devices)) {}

  const std::string& name() const noexcept { return name_; }
  std::vector<Device> devices(DeviceType type = DeviceType::All) const;

private:
  std::string name_;
  std::vector<Device> devices_;
};

/// (Re)configures the simulated machine. Resets every device timeline and
/// the host clock; outstanding Buffers keep working but no longer count
/// against the new devices. Tests call this freely.
void configureSystem(const SystemConfig& config);

/// Platform discovery, mirroring clGetPlatformIDs. The default machine
/// (if configureSystem was never called) is the paper's Tesla S1070.
std::vector<Platform> getPlatforms();

/// The simulated host clock (virtual nanoseconds since configureSystem).
std::uint64_t hostTimeNs();
void advanceHostTimeNs(std::uint64_t ns);
void syncHostTimeToNs(std::uint64_t ns); // host = max(host, ns)

/// Allocates the next command id (unique, ascending, 1-based; reset by
/// configureSystem together with the host clock). Command ids identify
/// nodes in trace dependency graphs (ocl::EventState::id).
std::uint64_t nextCommandId();

} // namespace ocl
