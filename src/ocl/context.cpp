#include "ocl/context.h"

namespace ocl {

Context::Context(std::vector<Device> devices) : devices_(std::move(devices)) {
  COMMON_EXPECTS(!devices_.empty(), "a context needs at least one device");
  for (const Device& d : devices_) {
    COMMON_EXPECTS(d.valid(), "invalid device passed to Context");
  }
}

Buffer Context::createBuffer(const Device& device, std::size_t bytes) const {
  bool found = false;
  for (const Device& d : devices_) {
    if (d == device) {
      found = true;
      break;
    }
  }
  COMMON_EXPECTS(found, "device does not belong to this context");
  return Buffer(std::make_shared<BufferState>(device, bytes));
}

} // namespace ocl
