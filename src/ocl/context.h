// Context: groups the devices an application uses and creates the
// resources shared between them (clCreateContext analogue).
#pragma once

#include <string>
#include <vector>

#include "ocl/buffer.h"
#include "ocl/program.h"

namespace ocl {

class Context {
public:
  Context() = default;
  explicit Context(std::vector<Device> devices);

  bool valid() const noexcept { return !devices_.empty(); }
  const std::vector<Device>& devices() const noexcept { return devices_; }

  /// Allocates `bytes` of device memory on `device` (which must belong to
  /// this context). Throws when the device's memory is exhausted.
  Buffer createBuffer(const Device& device, std::size_t bytes) const;

  /// clCreateProgramWithSource / clCreateProgramWithBinary analogues.
  Program createProgram(std::string source) const {
    return Program::fromSource(std::move(source));
  }
  Program createProgramFromBinary(
      const std::vector<std::uint8_t>& binary) const {
    return Program::fromBinary(binary);
  }

private:
  std::vector<Device> devices_;
};

} // namespace ocl
