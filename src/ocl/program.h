// Programs and kernels.
//
// As in real OpenCL, programs are created from *source strings* and built
// at runtime (clCreateProgramWithSource / clBuildProgram), or created from
// a previously exported binary (clCreateProgramWithBinary) — the fast path
// behind SkelCL's on-disk kernel cache.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "clc/bytecode.h"
#include "clc/vm.h"
#include "ocl/buffer.h"

namespace ocl {

/// Thrown by Program::build on compile errors; carries the build log a
/// real driver would return for CL_PROGRAM_BUILD_LOG.
class BuildError : public common::Error {
public:
  BuildError(const std::string& what, std::string log)
      : common::Error(what), log_(std::move(log)) {}

  const std::string& log() const noexcept { return log_; }

private:
  std::string log_;
};

class Kernel;

class Program {
public:
  Program() = default;

  /// clCreateProgramWithSource analogue.
  static Program fromSource(std::string source);

  /// clCreateProgramWithBinary analogue; throws common::DeserializeError
  /// for corrupted binaries.
  static Program fromBinary(const std::vector<std::uint8_t>& binary);

  bool valid() const noexcept { return impl_ != nullptr; }

  /// Compiles the source (no-op for binary programs). Throws BuildError.
  /// `options` is accepted for API fidelity and folded into nothing —
  /// clc has no build options yet.
  void build(const std::string& options = "");

  bool isBuilt() const;
  const std::string& buildLog() const;
  const std::string& source() const;

  /// Exports the compiled binary (clGetProgramInfo CL_PROGRAM_BINARIES).
  std::vector<std::uint8_t> binary() const;

  /// Creates a kernel handle; throws common::InvalidArgument for unknown
  /// kernel names or an unbuilt program.
  Kernel createKernel(const std::string& name) const;

  /// Names of all kernels in the program.
  std::vector<std::string> kernelNames() const;

  const clc::Program& compiled() const;

private:
  struct Impl {
    std::string source;
    std::string buildLog;
    bool built = false;
    clc::Program program;
  };

  std::shared_ptr<Impl> impl_;
};

/// A kernel handle plus its staged arguments (clSetKernelArg analogue).
class Kernel {
public:
  Kernel() = default;
  Kernel(std::shared_ptr<const clc::Program> program, std::string name);

  bool valid() const noexcept { return program_ != nullptr; }
  const std::string& name() const noexcept { return name_; }

  std::size_t argCount() const;

  /// Buffer argument (__global pointer parameter).
  void setArg(std::size_t index, const Buffer& buffer);

  /// Scalar argument. The value is converted to the parameter's declared
  /// type, so setArg(i, 5) on a float parameter does the right thing.
  void setArg(std::size_t index, float value);
  void setArg(std::size_t index, double value);
  void setArg(std::size_t index, std::int32_t value);
  void setArg(std::size_t index, std::uint32_t value);
  void setArg(std::size_t index, std::int64_t value);
  void setArg(std::size_t index, std::uint64_t value);

  /// By-value struct argument: raw bytes, must match the declared size.
  void setArgBytes(std::size_t index, const void* data, std::size_t size);

  /// __local pointer argument: the per-work-group byte count.
  void setArgLocal(std::size_t index, std::size_t bytes);

  /// Launch-time introspection used by the command queue.
  struct StagedArg {
    bool set = false;
    clc::KernelArgValue value;
    Buffer buffer; // keeps buffer alive; valid when value.kind == Buffer
  };
  const std::vector<StagedArg>& stagedArgs() const noexcept { return args_; }
  const clc::Program& program() const { return *program_; }
  const clc::FunctionInfo& functionInfo() const { return *func_; }

private:
  void setScalar(std::size_t index, std::uint64_t canonical,
                 clc::TypeTag sourceTag);
  const clc::ParamInfo& param(std::size_t index) const;

  std::shared_ptr<const clc::Program> program_;
  std::string name_;
  const clc::KernelInfo* kernel_ = nullptr;
  const clc::FunctionInfo* func_ = nullptr;
  std::vector<StagedArg> args_;
};

} // namespace ocl
