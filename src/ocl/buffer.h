// Device memory buffers.
//
// Deviation from the OpenCL spec, on purpose: a Buffer is allocated on a
// *specific* device rather than lazily migrated by the runtime. SkelCL
// manages per-device copies itself (that is the whole point of its Vector
// distribution machinery), so the explicit model keeps every byte of
// inter-device traffic visible to the timing model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ocl/device.h"

namespace ocl {

class BufferState {
public:
  BufferState(Device device, std::size_t bytes)
      : device_(std::move(device)), storage_(bytes) {
    device_.state().allocate(bytes);
  }

  ~BufferState() { device_.state().release(storage_.size()); }

  BufferState(const BufferState&) = delete;
  BufferState& operator=(const BufferState&) = delete;

  Device device() const noexcept { return device_; }
  std::size_t size() const noexcept { return storage_.size(); }
  std::uint8_t* data() noexcept { return storage_.data(); }
  const std::uint8_t* data() const noexcept { return storage_.data(); }

private:
  Device device_;
  std::vector<std::uint8_t> storage_;
};

/// Shared handle to a device allocation (clBuffer analogue).
class Buffer {
public:
  Buffer() = default;
  explicit Buffer(std::shared_ptr<BufferState> state)
      : state_(std::move(state)) {}

  bool valid() const noexcept { return state_ != nullptr; }
  std::size_t size() const { return state().size(); }
  Device device() const { return state().device(); }

  BufferState& state() const {
    COMMON_CHECK_MSG(state_ != nullptr, "use of an invalid Buffer handle");
    return *state_;
  }

  friend bool operator==(const Buffer& a, const Buffer& b) noexcept {
    return a.state_ == b.state_;
  }

private:
  std::shared_ptr<BufferState> state_;
};

} // namespace ocl
