// CUDA-style list-mode OSEM with explicit multi-GPU support.
//
// Follows the structure of the paper's CUDA implementation [Schellmann
// et al., Euro-Par 2008]: per-device resources selected with
// cudaSetDevice, explicit event splitting, per-device error images
// folded with device-to-device copies and a merge kernel, and a
// per-block image update. (The original used one CPU thread per device;
// device timelines overlap here without host threads.)
#include "osem/osem.h"

#include "common/stopwatch.h"
#include "cuda/runtime.h"
#include "osem_cuda_source.h"

namespace osem {

namespace {
constexpr std::uint32_t kBlockSize = 64;
} // namespace

OsemResult reconstructCuda(const Dataset& dataset, int numGpus) {
  common::Stopwatch wall;
  const auto virtualStart = cuda::clockNs();
  const VolumeDims& vol = dataset.vol;
  const std::size_t voxels = vol.voxels();
  const std::size_t imageBytes = voxels * sizeof(float);

  if (cuda::getDeviceCount() < numGpus) {
    throw common::Error("not enough CUDA devices");
  }
  const auto devices = std::size_t(numGpus);

  static cuda::Module module = cuda::Module::compile(kOsemCudaSource);

  struct DeviceResources {
    cuda::DeviceMemory events;
    cuda::DeviceMemory f;
    cuda::DeviceMemory c;
    cuda::DeviceMemory scratch;
    cuda::KernelFunction compute;
    cuda::KernelFunction add;
    cuda::KernelFunction update;
    std::size_t blockOffset = 0;
    std::size_t blockCount = 0;
  };

  const std::size_t maxChunkEvents =
      dataset.events.size() / std::size_t(dataset.numSubsets) / devices + 2;
  std::vector<DeviceResources> res(devices);
  std::size_t blockOffset = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    cuda::setDevice(int(d));
    res[d].events = cuda::DeviceMemory(maxChunkEvents * sizeof(Event));
    res[d].f = cuda::DeviceMemory(imageBytes);
    res[d].c = cuda::DeviceMemory(imageBytes);
    res[d].scratch = cuda::DeviceMemory(imageBytes);
    res[d].compute = module.function("compute_error_image");
    res[d].add = module.function("add_images");
    res[d].update = module.function("update_image");
    res[d].blockCount = voxels / devices + (d < voxels % devices ? 1 : 0);
    res[d].blockOffset = blockOffset;
    blockOffset += res[d].blockCount;
  }

  // 512 workers per device, as in the paper's path-memory bound.
  const std::uint32_t workerBlocks = 512 / kBlockSize;
  std::vector<float> f(voxels, 1.0f);
  const std::vector<float> zeros(voxels, 0.0f);

  for (std::int32_t iter = 0; iter < dataset.numIterations; ++iter) {
    for (std::int32_t l = 0; l < dataset.numSubsets; ++l) {
      const std::size_t begin = dataset.subsetBegin(l);
      const std::size_t subsetCount = dataset.subsetEnd(l) - begin;

      for (std::size_t d = 0; d < devices; ++d) {
        cuda::setDevice(int(d));
        DeviceResources& r = res[d];
        const std::size_t evBegin = begin + subsetCount * d / devices;
        const std::size_t evEnd = begin + subsetCount * (d + 1) / devices;
        const std::size_t count = evEnd - evBegin;
        // Async copies: with one host thread per device (the original
        // implementation) these overlap across the GPUs.
        if (count > 0) {
          cuda::memcpyHostToDeviceAsync(r.events,
                                        dataset.events.data() + evBegin,
                                        count * sizeof(Event));
        }
        cuda::memcpyHostToDeviceAsync(r.f, f.data(), imageBytes);
        cuda::memcpyHostToDeviceAsync(r.c, zeros.data(), imageBytes);
        cuda::launch(r.compute, cuda::Dim3(workerBlocks),
                     cuda::Dim3(kBlockSize), r.events,
                     std::uint32_t(count), r.f, r.c, vol);
      }

      for (std::size_t d = 0; d < devices; ++d) {
        cuda::setDevice(int(d));
        DeviceResources& r = res[d];
        if (r.blockCount == 0) {
          continue;
        }
        const auto blocks =
            std::uint32_t((r.blockCount + kBlockSize - 1) / kBlockSize);
        for (std::size_t j = 0; j < devices; ++j) {
          if (j == d) {
            continue;
          }
          cuda::memcpyDeviceToDevice(r.scratch, 0, res[j].c,
                                     r.blockOffset * sizeof(float),
                                     r.blockCount * sizeof(float));
          cuda::launch(r.add, cuda::Dim3(blocks), cuda::Dim3(kBlockSize),
                       r.c, std::uint32_t(r.blockOffset), r.scratch,
                       std::uint32_t(r.blockCount));
        }
        cuda::launch(r.update, cuda::Dim3(blocks), cuda::Dim3(kBlockSize),
                     r.f, r.c, std::uint32_t(r.blockOffset),
                     std::uint32_t(r.blockCount));
      }

      for (std::size_t d = 0; d < devices; ++d) {
        cuda::setDevice(int(d));
        DeviceResources& r = res[d];
        if (r.blockCount == 0) {
          continue;
        }
        cuda::memcpyDeviceToHost(f.data() + r.blockOffset, r.f,
                                 r.blockOffset * sizeof(float),
                                 r.blockCount * sizeof(float));
      }
    }
  }
  cuda::setDevice(0);

  OsemResult result;
  result.image = std::move(f);
  result.virtualSeconds = double(cuda::clockNs() - virtualStart) * 1e-9;
  result.wallSeconds = wall.elapsedSeconds();
  result.virtualSecondsPerSubset =
      result.virtualSeconds /
      double(dataset.numSubsets * dataset.numIterations);
  return result;
}

} // namespace osem
