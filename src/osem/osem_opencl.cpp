// Plain OpenCL-style list-mode OSEM with explicit multi-GPU support.
//
// Everything SkelCL hides is spelled out here: device discovery, one
// context/queue/buffer set per GPU, explicit event-subset splitting,
// per-device uploads of the reconstruction image, zeroing the error
// images, cross-device region copies plus merge kernels to fold the
// per-device error images into a block distribution, the update launch
// per block, and the downloads that reassemble the image on the host.
// The paper calls out this boilerplate ("over 100 lines of code only for
// initialization").
#include "osem/osem.h"

#include <iostream>

#include "common/stopwatch.h"
#include "ocl/ocl.h"
#include "osem_opencl_source.h"

namespace osem {

namespace {

struct DeviceResources {
  ocl::Device device;
  ocl::CommandQueue queue;
  ocl::Buffer events;
  ocl::Buffer f;
  ocl::Buffer c;
  ocl::Buffer scratch; // staging area for merge copies
  ocl::Kernel computeKernel;
  ocl::Kernel addKernel;
  ocl::Kernel updateKernel;
  std::size_t blockOffset = 0; // this device's block of the images
  std::size_t blockCount = 0;
};

constexpr std::size_t kWorkGroup = 64;

std::size_t roundUp(std::size_t n, std::size_t m) {
  return (n + m - 1) / m * m;
}

} // namespace

OsemResult reconstructOpenCl(const Dataset& dataset, int numGpus) {
  common::Stopwatch wall;
  const auto virtualStart = ocl::hostTimeNs();
  const VolumeDims& vol = dataset.vol;
  const std::size_t voxels = vol.voxels();
  const std::size_t imageBytes = voxels * sizeof(float);

  // --- initialization boilerplate -------------------------------------
  const auto platforms = ocl::getPlatforms();
  if (platforms.empty()) {
    throw common::Error("no OpenCL platforms found");
  }
  auto gpus = platforms.front().devices(ocl::DeviceType::GPU);
  if (gpus.size() < std::size_t(numGpus)) {
    throw common::Error("not enough GPU devices");
  }
  gpus.resize(std::size_t(numGpus));
  ocl::Context context(gpus);

  ocl::Program program = context.createProgram(kOsemOpenClSource);
  try {
    program.build();
  } catch (const ocl::BuildError& e) {
    std::cerr << "OpenCL build failed:\n" << e.log() << std::endl;
    throw;
  }

  const std::size_t devices = gpus.size();
  const std::size_t maxSubsetEvents =
      dataset.events.size() / std::size_t(dataset.numSubsets) + devices + 1;
  std::vector<DeviceResources> res;
  std::size_t blockOffset = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    DeviceResources r{
        gpus[d],
        ocl::CommandQueue(gpus[d], ocl::Backend::OpenCL),
        context.createBuffer(gpus[d],
                             maxSubsetEvents * sizeof(Event) / devices +
                                 sizeof(Event)),
        context.createBuffer(gpus[d], imageBytes),
        context.createBuffer(gpus[d], imageBytes),
        context.createBuffer(gpus[d], imageBytes),
        program.createKernel("compute_error_image"),
        program.createKernel("add_images"),
        program.createKernel("update_image"),
    };
    r.blockCount = voxels / devices + (d < voxels % devices ? 1 : 0);
    r.blockOffset = blockOffset;
    blockOffset += r.blockCount;
    res.push_back(std::move(r));
  }

  const std::size_t workers = 512; // per device (multiple of kWorkGroup)
  std::vector<float> f(voxels, 1.0f);
  const std::vector<float> zeros(voxels, 0.0f);

  for (std::int32_t iter = 0; iter < dataset.numIterations; ++iter) {
    for (std::int32_t l = 0; l < dataset.numSubsets; ++l) {
      const std::size_t begin = dataset.subsetBegin(l);
      const std::size_t end = dataset.subsetEnd(l);
      const std::size_t subsetCount = end - begin;

      // Upload this subset's events (split across devices), the current
      // reconstruction image, and a zeroed error image.
      for (std::size_t d = 0; d < devices; ++d) {
        DeviceResources& r = res[d];
        const std::size_t evBegin = begin + subsetCount * d / devices;
        const std::size_t evEnd = begin + subsetCount * (d + 1) / devices;
        const std::size_t count = evEnd - evBegin;
        if (count > 0) {
          r.queue.enqueueWriteBuffer(r.events, 0, count * sizeof(Event),
                                     dataset.events.data() + evBegin);
        }
        r.queue.enqueueWriteBuffer(r.f, 0, imageBytes, f.data());
        r.queue.enqueueWriteBuffer(r.c, 0, imageBytes, zeros.data());

        // Launch the error-image computation for this device's events.
        r.computeKernel.setArg(0, r.events);
        r.computeKernel.setArg(1, std::uint32_t(count));
        r.computeKernel.setArg(2, r.f);
        r.computeKernel.setArg(3, r.c);
        r.computeKernel.setArgBytes(4, &vol, sizeof(vol));
        r.queue.enqueueNDRange(r.computeKernel,
                               ocl::NDRange1D{workers, kWorkGroup});
      }

      // Fold every other device's region of c into this device's block.
      for (std::size_t d = 0; d < devices; ++d) {
        DeviceResources& r = res[d];
        if (r.blockCount == 0) {
          continue;
        }
        const std::size_t blockBytes = r.blockCount * sizeof(float);
        for (std::size_t j = 0; j < devices; ++j) {
          if (j == d) {
            continue;
          }
          r.queue.enqueueCopyBuffer(res[j].c,
                                    r.blockOffset * sizeof(float),
                                    r.scratch, 0, blockBytes);
          r.addKernel.setArg(0, r.c);
          r.addKernel.setArg(1, std::uint32_t(r.blockOffset));
          r.addKernel.setArg(2, r.scratch);
          r.addKernel.setArg(3, std::uint32_t(r.blockCount));
          r.queue.enqueueNDRange(
              r.addKernel,
              ocl::NDRange1D{roundUp(r.blockCount, kWorkGroup),
                             kWorkGroup});
        }
        // Update this device's block of the reconstruction image.
        r.updateKernel.setArg(0, r.f);
        r.updateKernel.setArg(1, r.c);
        r.updateKernel.setArg(2, std::uint32_t(r.blockOffset));
        r.updateKernel.setArg(3, std::uint32_t(r.blockCount));
        r.queue.enqueueNDRange(
            r.updateKernel,
            ocl::NDRange1D{roundUp(r.blockCount, kWorkGroup), kWorkGroup});
      }

      // Reassemble f on the host from the per-device blocks.
      std::vector<ocl::Event> reads;
      for (std::size_t d = 0; d < devices; ++d) {
        DeviceResources& r = res[d];
        if (r.blockCount == 0) {
          continue;
        }
        reads.push_back(r.queue.enqueueReadBuffer(
            r.f, r.blockOffset * sizeof(float),
            r.blockCount * sizeof(float), f.data() + r.blockOffset,
            /*blocking=*/false));
      }
      for (const ocl::Event& e : reads) {
        e.wait();
      }
    }
  }

  OsemResult result;
  result.image = std::move(f);
  result.virtualSeconds = double(ocl::hostTimeNs() - virtualStart) * 1e-9;
  result.wallSeconds = wall.elapsedSeconds();
  result.virtualSecondsPerSubset =
      result.virtualSeconds /
      double(dataset.numSubsets * dataset.numIterations);
  return result;
}

} // namespace osem
