// SkelCL list-mode OSEM — the paper's Listing 4.
//
// The events of a subset, the error image and the reconstruction image
// are SkelCL Vectors; distributions do all the multi-GPU work: events
// are block-distributed, both images are copied to all devices for the
// error-image computation, the copies of the error image are folded
// element-wise into a block distribution, and the update runs as a Zip
// over the block-distributed images.
#include "osem/osem.h"

#include "common/stopwatch.h"
#include "osem_skelcl_source.h"
#include "skelcl/skelcl.h"

namespace osem {

OsemResult reconstructSkelCl(const Dataset& dataset) {
  common::Stopwatch wall;
  const auto virtualStart = ocl::hostTimeNs();

  skelcl::registerType<Event>(
      "Event",
      "typedef struct { float x1; float y1; float z1;"
      " float x2; float y2; float z2; } Event;");
  skelcl::registerType<VolumeDims>(
      "OsemDims",
      "typedef struct { int nx; int ny; int nz; float voxelSize; }"
      " OsemDims;");

  skelcl::Map<int, void> computeC(kOsemSkelClSource);
  // Hand-tuned work-group size (the paper notes this is "sometimes
  // reasonable"): with only 512 map indices, the default of 256 would
  // occupy two compute units; 64 matches the CUDA/OpenCL baselines.
  computeC.setWorkGroupSize(64);
  skelcl::Zip<float> update(
      "float update_f(float f, float c) {"
      " if (c > 0.0f) { return f * c; } return f; }");
  const char* addSource = "float add(float x, float y) { return x + y; }";

  const std::size_t devices = skelcl::deviceCount();
  // The paper maps over a vector of 512 indices, bounding the number of
  // concurrently computed paths per device ("we must not compute too
  // many paths in parallel to avoid excessive memory consumption").
  // That bound is per device: each GPU runs 512 workers over its block
  // of the events.
  const std::int32_t workersPerDevice = 512;
  const std::int32_t numWorkers =
      workersPerDevice * std::int32_t(devices);

  skelcl::Vector<float> f(dataset.vol.voxels(), 1.0f);
  skelcl::Vector<float> c(dataset.vol.voxels(), 0.0f);
  skelcl::Vector<int> index = skelcl::indexVector(std::size_t(numWorkers));
  index.setDistribution(skelcl::Distribution::Block);

  const bool debugPhases = std::getenv("SKELCL_OSEM_DEBUG") != nullptr;
  std::uint64_t phaseMark = ocl::hostTimeNs();
  const auto tick = [&](const char* label) {
    if (debugPhases) {
      const auto now = ocl::hostTimeNs();
      std::fprintf(stderr, "  [osem-skelcl] %-22s %8.1f us\n", label,
                   double(now - phaseMark) * 1e-3);
      phaseMark = now;
    }
  };

  for (std::int32_t iter = 0; iter < dataset.numIterations; ++iter) {
    for (std::int32_t l = 0; l < dataset.numSubsets; ++l) {
      phaseMark = ocl::hostTimeNs();
      // "read events from file"
      skelcl::Vector<Event> events(
          dataset.events.data() + dataset.subsetBegin(l),
          dataset.subsetEnd(l) - dataset.subsetBegin(l));
      // distribute events to devices
      events.setDistribution(skelcl::Distribution::Block);
      // copy reconstruction (f) and error image (c) to all devices
      f.setDistribution(skelcl::Distribution::Copy);
      c.fill(0.0f);
      c.setDistribution(skelcl::Distribution::Copy);
      tick("distribute");
      // prepare arguments of the error-image computation
      skelcl::Arguments arguments;
      arguments.push(events);
      arguments.pushSizeOf(events);
      arguments.push(workersPerDevice);
      arguments.push(f);
      arguments.push(c);
      arguments.push(dataset.vol);
      // compute error image (map skeleton)
      computeC(index, arguments);
      tick("map compute_c (enqueue)");
      if (debugPhases) {
        const auto& st =
            skelcl::detail::Runtime::instance().queue(0).lastLaunchStats();
        std::fprintf(stderr,
                     "  [osem-skelcl] map stats: instr=%llu cycles=%llu "
                     "groups=%zu atomics=%llu\n",
                     (unsigned long long)st.instructions,
                     (unsigned long long)st.totalCycles, st.groups.size(),
                     (unsigned long long)st.atomicOps);
      }
      // signal modification of the error image
      c.dataOnDevicesModified();
      // reduce (element-wise add) all copies of the error image;
      // re-distribute across the devices after the reduction
      c.setDistribution(skelcl::Distribution::Block, addSource);
      tick("combine c");
      // distribute the reconstruction image across all devices
      f.setDistribution(skelcl::Distribution::Block);
      tick("redistribute f");
      // update reconstruction image (zip skeleton)
      update(f, c, f);
      tick("update");
    }
  }

  OsemResult result;
  result.image = f.hostData();
  result.virtualSeconds = double(ocl::hostTimeNs() - virtualStart) * 1e-9;
  result.wallSeconds = wall.elapsedSeconds();
  result.virtualSecondsPerSubset =
      result.virtualSeconds /
      double(dataset.numSubsets * dataset.numIterations);
  return result;
}

} // namespace osem
