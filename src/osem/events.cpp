#include "osem/osem.h"

#include <cmath>

#include "common/error.h"
#include "common/prng.h"

namespace osem {

namespace {

/// Samples an emission voxel proportional to phantom activity via
/// rejection sampling (simple, deterministic, and fast enough for the
/// dataset sizes used here).
std::size_t sampleEmissionVoxel(const std::vector<float>& phantom,
                                float maxActivity,
                                common::Xoshiro256& rng) {
  for (;;) {
    const auto voxel = std::size_t(rng.nextBelow(phantom.size()));
    if (phantom[voxel] <= 0.0f) {
      continue;
    }
    if (float(rng.nextDouble()) * maxActivity <= phantom[voxel]) {
      return voxel;
    }
  }
}

} // namespace

Dataset generateDataset(const OsemParams& params) {
  COMMON_EXPECTS(params.numSubsets > 0, "numSubsets must be positive");
  COMMON_EXPECTS(params.numEvents > 0, "numEvents must be positive");

  Dataset dataset;
  dataset.vol = params.vol;
  dataset.numSubsets = params.numSubsets;
  dataset.numIterations = params.numIterations;
  dataset.phantom = makePhantom(params.vol);

  float maxActivity = 0.0f;
  for (const float a : dataset.phantom) {
    maxActivity = std::max(maxActivity, a);
  }
  COMMON_EXPECTS(maxActivity > 0.0f, "phantom has no activity");

  common::Xoshiro256 rng(params.seed);
  const VolumeDims& vol = params.vol;
  // Endpoints land on a sphere comfortably containing the volume, which
  // stands in for the detector ring; the traversal clips to the volume.
  const float radius =
      0.75f * vol.voxelSize *
      std::sqrt(float(vol.nx * vol.nx + vol.ny * vol.ny + vol.nz * vol.nz));

  dataset.events.reserve(params.numEvents);
  while (dataset.events.size() < params.numEvents) {
    const std::size_t voxel =
        sampleEmissionVoxel(dataset.phantom, maxActivity, rng);
    const auto ix = std::int32_t(voxel % std::size_t(vol.nx));
    const auto iy =
        std::int32_t((voxel / std::size_t(vol.nx)) % std::size_t(vol.ny));
    const auto iz =
        std::int32_t(voxel / (std::size_t(vol.nx) * std::size_t(vol.ny)));

    // Emission point: jittered within the voxel, volume-centered coords.
    const float px =
        (float(ix) + float(rng.nextDouble()) - float(vol.nx) / 2.0f) *
        vol.voxelSize;
    const float py =
        (float(iy) + float(rng.nextDouble()) - float(vol.ny) / 2.0f) *
        vol.voxelSize;
    const float pz =
        (float(iz) + float(rng.nextDouble()) - float(vol.nz) / 2.0f) *
        vol.voxelSize;

    // Isotropic direction.
    const float u = 2.0f * float(rng.nextDouble()) - 1.0f;
    const float phi = 2.0f * 3.14159265358979f * float(rng.nextDouble());
    const float s = std::sqrt(std::max(0.0f, 1.0f - u * u));
    const float dx = s * std::cos(phi);
    const float dy = s * std::sin(phi);
    const float dz = u;

    Event event;
    event.x1 = px + radius * dx;
    event.y1 = py + radius * dy;
    event.z1 = pz + radius * dz;
    event.x2 = px - radius * dx;
    event.y2 = py - radius * dy;
    event.z2 = pz - radius * dz;
    dataset.events.push_back(event);
  }
  return dataset;
}

double relativeRmse(const std::vector<float>& reference,
                    const std::vector<float>& image) {
  COMMON_EXPECTS(reference.size() == image.size(),
                 "image size mismatch in relativeRmse");
  double diff2 = 0;
  double ref2 = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = double(reference[i]) - double(image[i]);
    diff2 += d * d;
    ref2 += double(reference[i]) * double(reference[i]);
  }
  return ref2 == 0 ? std::sqrt(diff2) : std::sqrt(diff2 / ref2);
}

} // namespace osem
