// Siddon-style incremental ray traversal (host reference).
//
// Computes the voxel intersection path of a line of response through the
// volume — the `compute_path` step of paper Listing 3. The device kernels
// implement the same algorithm in OpenCL-C / CUDA dialect.
#include <cmath>
#include <limits>

#include "osem/osem.h"

namespace osem {

std::size_t computePath(const VolumeDims& vol, const Event& event,
                        PathElement* out, std::size_t maxElements) {
  const float ox = event.x1;
  const float oy = event.y1;
  const float oz = event.z1;
  const float dx = event.x2 - event.x1;
  const float dy = event.y2 - event.y1;
  const float dz = event.z2 - event.z1;
  const float length = std::sqrt(dx * dx + dy * dy + dz * dz);
  if (length == 0.0f) {
    return 0;
  }

  const float lox = -float(vol.nx) * vol.voxelSize / 2.0f;
  const float loy = -float(vol.ny) * vol.voxelSize / 2.0f;
  const float loz = -float(vol.nz) * vol.voxelSize / 2.0f;
  const float hix = -lox;
  const float hiy = -loy;
  const float hiz = -loz;

  // Clip the parametric range [0,1] against the volume slabs.
  float tmin = 0.0f;
  float tmax = 1.0f;
  const auto clip = [&](float o, float d, float lo, float hi) {
    if (d == 0.0f) {
      return o >= lo && o <= hi;
    }
    float t1 = (lo - o) / d;
    float t2 = (hi - o) / d;
    if (t1 > t2) {
      std::swap(t1, t2);
    }
    tmin = std::max(tmin, t1);
    tmax = std::min(tmax, t2);
    return true;
  };
  if (!clip(ox, dx, lox, hix) || !clip(oy, dy, loy, hiy) ||
      !clip(oz, dz, loz, hiz) || tmin >= tmax) {
    return 0;
  }

  // Entry voxel (nudged inside to stabilise the floor at the boundary).
  const float tEnter = tmin + 1e-6f;
  const auto voxelOf = [&](float p, float lo, std::int32_t n) {
    auto i = std::int32_t(std::floor((p - lo) / vol.voxelSize));
    return std::min(std::max(i, std::int32_t(0)), n - 1);
  };
  std::int32_t ix = voxelOf(ox + tEnter * dx, lox, vol.nx);
  std::int32_t iy = voxelOf(oy + tEnter * dy, loy, vol.ny);
  std::int32_t iz = voxelOf(oz + tEnter * dz, loz, vol.nz);

  const float inf = std::numeric_limits<float>::infinity();
  const auto axisSetup = [&](float o, float d, float lo, std::int32_t i,
                             float& tNext, float& tDelta,
                             std::int32_t& step) {
    if (d > 0.0f) {
      step = 1;
      tDelta = vol.voxelSize / d;
      tNext = (lo + float(i + 1) * vol.voxelSize - o) / d;
    } else if (d < 0.0f) {
      step = -1;
      tDelta = -vol.voxelSize / d;
      tNext = (lo + float(i) * vol.voxelSize - o) / d;
    } else {
      step = 0;
      tDelta = inf;
      tNext = inf;
    }
  };
  float tx, ty, tz, dtx, dty, dtz;
  std::int32_t sx, sy, sz;
  axisSetup(ox, dx, lox, ix, tx, dtx, sx);
  axisSetup(oy, dy, loy, iy, ty, dty, sy);
  axisSetup(oz, dz, loz, iz, tz, dtz, sz);

  std::size_t count = 0;
  float t = tmin;
  while (t < tmax && count < maxElements) {
    const float tn = std::min(std::min(tx, ty), std::min(tz, tmax));
    const float len = (tn - t) * length;
    if (len > 0.0f) {
      out[count].voxel = ix + vol.nx * (iy + vol.ny * iz);
      out[count].length = len;
      ++count;
    }
    if (tn >= tmax) {
      break;
    }
    if (tx <= ty && tx <= tz) {
      ix += sx;
      tx += dtx;
      if (ix < 0 || ix >= vol.nx) break;
    } else if (ty <= tz) {
      iy += sy;
      ty += dty;
      if (iy < 0 || iy >= vol.ny) break;
    } else {
      iz += sz;
      tz += dtz;
      if (iz < 0 || iz >= vol.nz) break;
    }
    t = tn;
  }
  return count;
}

} // namespace osem
