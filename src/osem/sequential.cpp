// Sequential list-mode OSEM — the paper's Listing 3, in C++.
#include "osem/osem.h"

#include "common/stopwatch.h"

namespace osem {

OsemResult reconstructSequential(const Dataset& dataset) {
  common::Stopwatch wall;
  const VolumeDims& vol = dataset.vol;
  const std::size_t voxels = vol.voxels();
  const std::size_t maxPath =
      std::size_t(vol.nx + vol.ny + vol.nz) + 3;

  std::vector<float> f(voxels, 1.0f); // reconstruction image
  std::vector<float> c(voxels);       // error image
  std::vector<PathElement> path(maxPath);

  for (std::int32_t iter = 0; iter < dataset.numIterations; ++iter) {
    for (std::int32_t l = 0; l < dataset.numSubsets; ++l) {
      // Compute the error image c from the subset's events.
      std::fill(c.begin(), c.end(), 0.0f);
      for (std::size_t i = dataset.subsetBegin(l);
           i < dataset.subsetEnd(l); ++i) {
        const std::size_t pathLen =
            computePath(vol, dataset.events[i], path.data(), maxPath);
        float fp = 0.0f;
        for (std::size_t m = 0; m < pathLen; ++m) {
          fp += f[std::size_t(path[m].voxel)] * path[m].length;
        }
        if (fp <= 0.0f) {
          continue;
        }
        for (std::size_t m = 0; m < pathLen; ++m) {
          c[std::size_t(path[m].voxel)] += path[m].length / fp;
        }
      }
      // Update the reconstruction image f.
      for (std::size_t j = 0; j < voxels; ++j) {
        if (c[j] > 0.0f) {
          f[j] *= c[j];
        }
      }
    }
  }

  OsemResult result;
  result.image = std::move(f);
  result.wallSeconds = wall.elapsedSeconds();
  return result;
}

} // namespace osem
