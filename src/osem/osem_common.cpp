#include "osem/osem.h"

namespace osem {

std::vector<LocEntry> locEntries() {
  const std::string dir = std::string(SKELCL_REPRO_SOURCE_DIR) +
                          "/src/osem/";
  return {
      {"CUDA", dir + "kernels/osem_cuda.cl", dir + "osem_cuda.cpp"},
      {"OpenCL", dir + "kernels/osem_opencl.cl", dir + "osem_opencl.cpp"},
      {"SkelCL", dir + "kernels/osem_skelcl.cl", dir + "osem_skelcl.cpp"},
  };
}

} // namespace osem
