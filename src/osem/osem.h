// List-mode OSEM case study (paper Sec. IV-B).
//
// List-Mode Ordered Subset Expectation Maximization reconstructs a 3-D
// image from PET events (lines of response, LORs). The paper used
// proprietary clinical list-mode data; this reproduction substitutes a
// synthetic PET substrate — an ellipsoid phantom, an isotropic event
// generator, and a Siddon-style ray traversal — that produces events with
// the same structure and per-event compute profile (see DESIGN.md).
//
// Four implementations share the same algorithm (paper Listing 3):
// sequential C++ (reference), CUDA-style, OpenCL-style, and SkelCL
// (Listing 4). All parallel versions support multiple GPUs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace osem {

/// Reconstruction volume: nx*ny*nz voxels of edge length `voxelSize`,
/// centered at the origin.
struct VolumeDims {
  std::int32_t nx = 32;
  std::int32_t ny = 32;
  std::int32_t nz = 32;
  float voxelSize = 1.0f;

  std::size_t voxels() const {
    return std::size_t(nx) * std::size_t(ny) * std::size_t(nz);
  }
};

/// One PET event: the two endpoints of its line of response.
struct Event {
  float x1, y1, z1;
  float x2, y2, z2;
};

struct OsemParams {
  VolumeDims vol;
  std::size_t numEvents = 20000;
  std::int32_t numSubsets = 10;   // paper: 10 equally sized subsets
  std::int32_t numIterations = 1; // full passes over all subsets
  std::uint64_t seed = 42;

  /// The paper's dataset shape: ~10^7 events, 150x150x280 image. Only
  /// use with generous time budgets; the default below keeps the
  /// interpreted substrate tractable.
  static OsemParams paperSize() {
    OsemParams p;
    p.vol = VolumeDims{150, 150, 280, 1.0f};
    p.numEvents = 10'000'000;
    return p;
  }

  /// Scaled-down dataset whose compute:transfer ratio resembles the
  /// paper's full-size run (where per-subset compute dominates the
  /// image transfers); see EXPERIMENTS.md for the scaling rationale.
  static OsemParams benchSize() {
    OsemParams p;
    p.vol = VolumeDims{24, 24, 32, 1.0f};
    p.numEvents = 50000;
    return p;
  }

  static OsemParams testSize() {
    OsemParams p;
    p.vol = VolumeDims{12, 12, 16, 1.0f};
    p.numEvents = 3000;
    p.numSubsets = 5;
    return p;
  }
};

/// A generated synthetic dataset: ground-truth phantom + events.
struct Dataset {
  VolumeDims vol;
  std::int32_t numSubsets = 10;
  std::int32_t numIterations = 1;
  std::vector<float> phantom; // ground-truth activity (voxels)
  std::vector<Event> events;

  /// The paper processes events subset by subset.
  std::size_t subsetBegin(std::int32_t subset) const {
    return events.size() * std::size_t(subset) / std::size_t(numSubsets);
  }
  std::size_t subsetEnd(std::int32_t subset) const {
    return events.size() * std::size_t(subset + 1) /
           std::size_t(numSubsets);
  }
};

/// Deterministically generates phantom + events for the given parameters.
Dataset generateDataset(const OsemParams& params);

/// Ellipsoid phantom (hot ellipsoid + cold core inside a warm cylinder).
std::vector<float> makePhantom(const VolumeDims& vol);

// --- Siddon-style ray traversal (host reference) ---------------------------

struct PathElement {
  std::int32_t voxel = -1; // linear voxel index
  float length = 0.0f;     // intersection length within the voxel
};

/// Computes the voxel path of an event's LOR through the volume.
/// Returns the number of path elements written (at most `maxElements`).
std::size_t computePath(const VolumeDims& vol, const Event& event,
                        PathElement* out, std::size_t maxElements);

// --- reconstructions ---------------------------------------------------------

struct OsemResult {
  std::vector<float> image;
  double virtualSeconds = 0; // simulated time (0 for the host reference)
  double wallSeconds = 0;
  /// Average virtual seconds per subset (the paper reports the average
  /// runtime of processing all subsets).
  double virtualSecondsPerSubset = 0;
};

/// Sequential reference (paper Listing 3).
OsemResult reconstructSequential(const Dataset& dataset);

/// CUDA-style multi-GPU implementation.
OsemResult reconstructCuda(const Dataset& dataset, int numGpus);

/// Plain OpenCL-style multi-GPU implementation.
OsemResult reconstructOpenCl(const Dataset& dataset, int numGpus);

/// SkelCL implementation (paper Listing 4); uses the devices selected by
/// skelcl::init().
OsemResult reconstructSkelCl(const Dataset& dataset);

/// Root-mean-square difference between two images, normalized by the
/// RMS of `reference` (for verification against the phantom/reference).
double relativeRmse(const std::vector<float>& reference,
                    const std::vector<float>& image);

/// Source files whose LoC reproduce the paper's program-size figure.
struct LocEntry {
  std::string label;
  std::string kernelFile;
  std::string hostFile;
};
std::vector<LocEntry> locEntries();

} // namespace osem
