#include "osem/osem.h"

namespace osem {

std::vector<float> makePhantom(const VolumeDims& vol) {
  // A warm cylinder filling most of the FOV, a hot ellipsoid off-center,
  // and a cold spherical core — the standard shapes used to exercise
  // emission reconstruction.
  std::vector<float> phantom(vol.voxels(), 0.0f);
  const float cx = float(vol.nx) / 2.0f;
  const float cy = float(vol.ny) / 2.0f;
  const float cz = float(vol.nz) / 2.0f;
  const float cylinderR = 0.45f * float(std::min(vol.nx, vol.ny));
  const float hotA = 0.22f * float(vol.nx);
  const float hotB = 0.15f * float(vol.ny);
  const float hotC = 0.3f * float(vol.nz);
  const float coldR = 0.12f * float(std::min(vol.nx, vol.ny));

  std::size_t index = 0;
  for (std::int32_t z = 0; z < vol.nz; ++z) {
    for (std::int32_t y = 0; y < vol.ny; ++y) {
      for (std::int32_t x = 0; x < vol.nx; ++x, ++index) {
        const float dx = float(x) + 0.5f - cx;
        const float dy = float(y) + 0.5f - cy;
        const float dz = float(z) + 0.5f - cz;
        float activity = 0.0f;
        if (dx * dx + dy * dy <= cylinderR * cylinderR &&
            float(z) > 0.1f * float(vol.nz) &&
            float(z) < 0.9f * float(vol.nz)) {
          activity = 1.0f; // warm background
        }
        const float ex = (dx + 0.2f * cx) / hotA;
        const float ey = (dy - 0.15f * cy) / hotB;
        const float ez = dz / hotC;
        if (ex * ex + ey * ey + ez * ez <= 1.0f) {
          activity = 4.0f; // hot lesion
        }
        const float sx = dx - 0.25f * cx;
        const float sy = dy + 0.2f * cy;
        if (sx * sx + sy * sy + dz * dz <= coldR * coldR) {
          activity = 0.1f; // cold core
        }
        phantom[index] = activity;
      }
    }
  }
  return phantom;
}

} // namespace osem
