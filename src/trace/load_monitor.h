// Live per-device compute-load totals, independent of whether a trace
// is being recorded.
//
// The trace Recorder captures full command streams for offline analysis;
// the LoadMonitor is its always-on little sibling: a handful of counters
// per device (kernel cycles executed, compute-engine busy nanoseconds,
// launches) that the SkelCL runtime reads *during* a run to derive
// `measured` block-distribution weights. CommandQueue::retire feeds it
// on every kernel retirement; ocl::configureSystem resets it together
// with the rest of the machine state, so totals always describe the
// current platform.
//
// Cost when nobody reads it: one mutexed add per kernel *launch* — noise
// next to the interpreter cycles behind each launch, which is why there
// is no enabled flag.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace trace {

/// Cumulative compute-engine totals for one device since the last reset.
struct DeviceLoad {
  std::uint64_t kernelCycles = 0;  // VM cycles across retired kernels
  std::uint64_t computeBusyNs = 0; // summed kernel durations (virtual ns)
  std::uint64_t launches = 0;

  /// Observed throughput in cycles per busy nanosecond — the `measured`
  /// weight of this device. Zero when the device has not run a kernel.
  double cyclesPerBusyNs() const noexcept {
    return computeBusyNs == 0 ? 0.0
                              : double(kernelCycles) / double(computeBusyNs);
  }
};

class LoadMonitor {
public:
  static LoadMonitor& instance();

  /// Forgets all totals and resizes to the new machine.
  void reset(std::size_t deviceCount);

  /// Accounts one retired kernel. Out-of-range device indices are
  /// dropped (a stale queue outliving a configureSystem), never UB.
  void addKernel(std::uint32_t device, std::uint64_t cycles,
                 std::uint64_t durationNs) noexcept;

  /// Copies the current totals (index = device index).
  std::vector<DeviceLoad> snapshot() const;

  /// True once every device has retired at least one kernel — the
  /// precondition for `measured` weights to describe the whole machine.
  bool allDevicesSampled() const;

private:
  LoadMonitor() = default;

  mutable std::mutex mutex_;
  std::vector<DeviceLoad> loads_;
};

} // namespace trace
