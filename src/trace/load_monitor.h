// Live per-device compute-load totals, independent of whether a trace
// is being recorded.
//
// The trace Recorder captures full command streams for offline analysis;
// the LoadMonitor is its always-on little sibling: a handful of counters
// per device (kernel cycles executed, compute-engine busy nanoseconds,
// launches) that the SkelCL runtime reads *during* a run to derive
// `measured` block-distribution weights. CommandQueue::retire feeds it
// on every kernel retirement; ocl::configureSystem resets it together
// with the rest of the machine state, so totals always describe the
// current platform.
//
// Cost when nobody reads it: one mutexed add per kernel *launch* — noise
// next to the interpreter cycles behind each launch, which is why there
// is no enabled flag.
// Tenant accounting (job service): the server brackets each job's
// execution in begin/endTenantScope; kernel and transfer retirements
// that happen inside a scope are charged to that tenant in addition to
// the device totals. The per-tenant numbers (device-cycles, bytes moved,
// queue wait) are what fair-share scheduling and the skeltrace tenant
// report run on. reset() forgets tenants together with the device
// totals, so accounting always describes the current platform.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace trace {

/// Cumulative compute-engine totals for one device since the last reset.
struct DeviceLoad {
  std::uint64_t kernelCycles = 0;  // VM cycles across retired kernels
  std::uint64_t computeBusyNs = 0; // summed kernel durations (virtual ns)
  std::uint64_t launches = 0;
  std::uint64_t bytesMoved = 0;    // H2D + D2H DMA payload bytes

  /// Observed throughput in cycles per busy nanosecond — the `measured`
  /// weight of this device. Zero when the device has not run a kernel.
  double cyclesPerBusyNs() const noexcept {
    return computeBusyNs == 0 ? 0.0
                              : double(kernelCycles) / double(computeBusyNs);
  }
};

/// Cumulative per-tenant resource totals since the last reset.
struct TenantLoad {
  std::string name;
  std::uint64_t deviceCycles = 0;  // VM cycles of kernels run for this tenant
  std::uint64_t computeBusyNs = 0; // summed kernel durations (virtual ns)
  std::uint64_t bytesMoved = 0;    // H2D + D2H + peer-copy payload bytes
  std::uint64_t launches = 0;
  std::uint64_t jobs = 0;          // jobs the service completed (ok or failed)
  std::uint64_t queueWaitNs = 0;   // summed virtual-time submission->dispatch
};

class LoadMonitor {
public:
  static LoadMonitor& instance();

  /// Forgets all totals — devices and tenants — and resizes to the new
  /// machine.
  void reset(std::size_t deviceCount);

  /// Accounts one retired kernel. Out-of-range device indices are
  /// dropped (a stale queue outliving a configureSystem), never UB.
  void addKernel(std::uint32_t device, std::uint64_t cycles,
                 std::uint64_t durationNs) noexcept;

  /// Accounts one retired DMA transfer's payload against the device and
  /// the active tenant (engine busy time lives in the trace; the byte
  /// total feeds live per-device energy estimates).
  void addTransfer(std::uint32_t device, std::uint64_t bytes) noexcept;

  /// Copies the current totals (index = device index).
  std::vector<DeviceLoad> snapshot() const;

  /// True once every device has retired at least one kernel — the
  /// precondition for `measured` weights to describe the whole machine.
  bool allDevicesSampled() const;

  // --- tenant attribution (job service) ---------------------------------

  /// Adds a tenant row and returns its id (an index into
  /// tenantSnapshot()). Names need not be unique; ids are.
  std::size_t registerTenant(const std::string& name);

  /// Starts charging retirements to `tenant` / stops charging. Scopes
  /// do not nest; the job service brackets one job phase at a time.
  void beginTenantScope(std::size_t tenant) noexcept;
  void endTenantScope() noexcept;

  /// Accounts one completed service job for `tenant` and the virtual
  /// time it waited between submission and dispatch.
  void noteTenantJob(std::size_t tenant, std::uint64_t queueWaitNs) noexcept;

  /// Copies one tenant's totals (default row for out-of-range ids).
  TenantLoad tenantLoad(std::size_t tenant) const;

  /// Copies all tenant rows (index = tenant id).
  std::vector<TenantLoad> tenantSnapshot() const;

private:
  LoadMonitor() = default;

  mutable std::mutex mutex_;
  std::vector<DeviceLoad> loads_;
  std::vector<TenantLoad> tenants_;
  std::size_t activeTenant_ = kNoTenant;
  static constexpr std::size_t kNoTenant = ~std::size_t(0);
};

} // namespace trace
