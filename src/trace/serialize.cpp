#include "trace/serialize.h"

#include "common/byte_stream.h"
#include "trace/chrome_export.h"

namespace trace {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'T', 'R'};

bool hasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

std::vector<std::uint8_t> serialize(const Trace& trace) {
  common::ByteWriter w;
  w.writeBytes(kMagic, sizeof(kMagic));
  w.write<std::uint32_t>(kBinaryVersion);

  w.write<std::uint64_t>(trace.strings.size());
  for (const std::string& s : trace.strings) {
    w.writeString(s);
  }
  w.write<std::uint64_t>(trace.devices.size());
  for (const DeviceInfo& d : trace.devices) {
    w.write<std::uint32_t>(d.index);
    w.writeString(d.name);
    w.write<std::uint32_t>(d.node);
    w.write<double>(d.idlePowerW);
    w.write<double>(d.busyPowerW);
    w.write<double>(d.transferNjPerByte);
  }
  w.write<std::uint64_t>(trace.commands.size());
  for (const CommandRecord& c : trace.commands) {
    w.write<std::uint64_t>(c.id);
    w.write<std::uint32_t>(c.device);
    w.write<std::uint8_t>(c.engine);
    w.write<std::uint8_t>(std::uint8_t(c.kind));
    w.write<std::uint32_t>(c.name);
    w.write<std::uint64_t>(c.queuedNs);
    w.write<std::uint64_t>(c.submitNs);
    w.write<std::uint64_t>(c.startNs);
    w.write<std::uint64_t>(c.endNs);
    w.write<std::uint64_t>(c.bytes);
    w.write<std::uint64_t>(c.cycles);
    w.writeVector(c.deps);
  }
  w.write<std::uint64_t>(trace.hostSpans.size());
  for (const HostSpanRecord& h : trace.hostSpans) {
    w.write<std::uint32_t>(h.name);
    w.write<std::uint8_t>(std::uint8_t(h.kind));
    w.write<std::uint32_t>(h.device);
    w.write<std::uint32_t>(h.lane);
    w.write<std::uint64_t>(h.startNs);
    w.write<std::uint64_t>(h.endNs);
    w.write<std::uint64_t>(h.value);
  }
  w.write<std::uint64_t>(trace.counters.size());
  for (const CounterRecord& c : trace.counters) {
    w.write<std::uint32_t>(c.name);
    w.write<std::uint32_t>(c.device);
    w.write<std::uint64_t>(c.timeNs);
    w.write<std::uint64_t>(c.value);
  }
  return w.takeBytes();
}

Trace deserialize(const std::vector<std::uint8_t>& bytes) {
  common::ByteReader r(bytes);
  char magic[4];
  r.readBytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw common::DeserializeError("not a SkelCL trace (bad magic)");
  }
  const auto version = r.read<std::uint32_t>();
  if (version != kBinaryVersion) {
    throw common::DeserializeError("unsupported trace version " +
                                   std::to_string(version));
  }

  Trace trace;
  const auto nStrings = r.read<std::uint64_t>();
  trace.strings.reserve(std::size_t(nStrings));
  for (std::uint64_t i = 0; i < nStrings; ++i) {
    trace.strings.push_back(r.readString());
  }
  const auto nDevices = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < nDevices; ++i) {
    DeviceInfo d;
    d.index = r.read<std::uint32_t>();
    d.name = r.readString();
    d.node = r.read<std::uint32_t>();
    d.idlePowerW = r.read<double>();
    d.busyPowerW = r.read<double>();
    d.transferNjPerByte = r.read<double>();
    trace.devices.push_back(std::move(d));
  }
  const auto nCommands = r.read<std::uint64_t>();
  trace.commands.reserve(std::size_t(nCommands));
  for (std::uint64_t i = 0; i < nCommands; ++i) {
    CommandRecord c;
    c.id = r.read<std::uint64_t>();
    c.device = r.read<std::uint32_t>();
    c.engine = r.read<std::uint8_t>();
    c.kind = CommandKind(r.read<std::uint8_t>());
    c.name = r.read<std::uint32_t>();
    c.queuedNs = r.read<std::uint64_t>();
    c.submitNs = r.read<std::uint64_t>();
    c.startNs = r.read<std::uint64_t>();
    c.endNs = r.read<std::uint64_t>();
    c.bytes = r.read<std::uint64_t>();
    c.cycles = r.read<std::uint64_t>();
    c.deps = r.readVector<std::uint64_t>();
    trace.commands.push_back(std::move(c));
  }
  const auto nHost = r.read<std::uint64_t>();
  trace.hostSpans.reserve(std::size_t(nHost));
  for (std::uint64_t i = 0; i < nHost; ++i) {
    HostSpanRecord h;
    h.name = r.read<std::uint32_t>();
    h.kind = HostKind(r.read<std::uint8_t>());
    h.device = r.read<std::uint32_t>();
    h.lane = r.read<std::uint32_t>();
    h.startNs = r.read<std::uint64_t>();
    h.endNs = r.read<std::uint64_t>();
    h.value = r.read<std::uint64_t>();
    trace.hostSpans.push_back(h);
  }
  const auto nCounters = r.read<std::uint64_t>();
  trace.counters.reserve(std::size_t(nCounters));
  for (std::uint64_t i = 0; i < nCounters; ++i) {
    CounterRecord c;
    c.name = r.read<std::uint32_t>();
    c.device = r.read<std::uint32_t>();
    c.timeNs = r.read<std::uint64_t>();
    c.value = r.read<std::uint64_t>();
    trace.counters.push_back(c);
  }
  return trace;
}

void writeTraceFile(const std::string& path, const Trace& trace) {
  if (hasSuffix(path, ".json")) {
    const std::string json = chromeJson(trace);
    common::writeFile(path,
                      std::vector<std::uint8_t>(json.begin(), json.end()));
    return;
  }
  common::writeFile(path, serialize(trace));
}

Trace readTraceFile(const std::string& path) {
  return deserialize(common::readFile(path));
}

} // namespace trace
