#include "trace/chrome_export.h"

#include <cinttypes>
#include <cstdio>

namespace trace {

namespace {

/// ts/dur are microseconds in the trace-event format; virtual time is
/// nanoseconds. Prints with fixed 3 decimals so no precision is lost
/// and output is deterministic.
std::string micros(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                unsigned(ns % 1000));
  return buf;
}

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", unsigned(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void appendMeta(std::string& out, const char* name, std::uint32_t pid,
                int tid, const std::string& value) {
  out += "{\"ph\":\"M\",\"name\":\"";
  out += name;
  out += "\",\"pid\":" + std::to_string(pid);
  if (tid >= 0) {
    out += ",\"tid\":" + std::to_string(tid);
  }
  out += ",\"args\":{\"name\":\"" + escaped(value) + "\"}},\n";
}

} // namespace

std::string chromeJson(const Trace& trace) {
  std::string out = "{\"traceEvents\":[\n";

  // Row naming: pid 0 = host, pid d+1 = device d with one tid per engine.
  // Host tid = HostSpanRecord::lane: 0 is the runtime thread, lanes >= 1
  // hold the async scheduler's overlapping per-job spans.
  appendMeta(out, "process_name", 0, -1, "SkelCL host");
  std::uint32_t maxLane = 0;
  for (const HostSpanRecord& h : trace.hostSpans) {
    maxLane = h.lane > maxLane ? h.lane : maxLane;
  }
  appendMeta(out, "thread_name", 0, 0, "runtime");
  for (std::uint32_t lane = 1; lane <= maxLane; ++lane) {
    appendMeta(out, "thread_name", 0, int(lane),
               "async job slot " + std::to_string(lane));
  }
  bool multiNode = false;
  for (const DeviceInfo& d : trace.devices) {
    multiNode = multiNode || d.node != 0;
  }
  for (const DeviceInfo& d : trace.devices) {
    const std::string nodeTag =
        multiNode ? "Node " + std::to_string(d.node) + " / " : "";
    appendMeta(out, "process_name", d.index + 1, -1,
               nodeTag + "Device " + std::to_string(d.index) + ": " + d.name);
    for (std::uint8_t e = 0; e < kEngineCount; ++e) {
      appendMeta(out, "thread_name", d.index + 1, e, engineLabel(e));
    }
  }

  for (const CommandRecord& c : trace.commands) {
    out += "{\"ph\":\"X\",\"pid\":" + std::to_string(c.device + 1) +
           ",\"tid\":" + std::to_string(c.engine) + ",\"ts\":" +
           micros(c.startNs) + ",\"dur\":" + micros(c.endNs - c.startNs) +
           ",\"name\":\"" + escaped(trace.str(c.name)) + "\",\"cat\":\"" +
           commandKindLabel(c.kind) + "\",\"args\":{\"id\":" +
           std::to_string(c.id) + ",\"queued_ns\":" +
           std::to_string(c.queuedNs) + ",\"submit_ns\":" +
           std::to_string(c.submitNs) + ",\"bytes\":" +
           std::to_string(c.bytes) + ",\"cycles\":" +
           std::to_string(c.cycles) + ",\"deps\":[";
    for (std::size_t i = 0; i < c.deps.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      out += std::to_string(c.deps[i]);
    }
    out += "]}},\n";
  }

  for (const HostSpanRecord& h : trace.hostSpans) {
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(h.lane) +
           ",\"ts\":" + micros(h.startNs) +
           ",\"dur\":" + micros(h.endNs - h.startNs) + ",\"name\":\"" +
           escaped(trace.str(h.name)) + "\",\"cat\":\"" +
           hostKindLabel(h.kind) + "\",\"args\":{\"device\":" +
           (h.device == kNoDevice ? std::string("-1")
                                  : std::to_string(h.device)) +
           ",\"value\":" + std::to_string(h.value) + "}},\n";
  }

  for (const CounterRecord& c : trace.counters) {
    out += "{\"ph\":\"C\",\"pid\":" +
           std::to_string(c.device == kNoDevice ? 0 : c.device + 1) +
           ",\"ts\":" + micros(c.timeNs) + ",\"name\":\"" +
           escaped(trace.str(c.name)) + "\",\"args\":{\"value\":" +
           std::to_string(c.value) + "}},\n";
  }

  // Trailing comma removal keeps the emitters above uniform.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

} // namespace trace
