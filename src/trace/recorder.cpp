#include "trace/recorder.h"

#include "common/error.h"

namespace trace {

namespace {

std::uint64_t (*g_timeSource)() noexcept = nullptr;

/// Per-thread capture redirection (see Recorder::redirectThreadToBuffer).
thread_local Recorder::CaptureBuffer* t_captureBuffer = nullptr;

} // namespace

std::uint64_t now() noexcept {
  return g_timeSource != nullptr ? g_timeSource() : 0;
}

void setTimeSource(std::uint64_t (*source)() noexcept) noexcept {
  g_timeSource = source;
}

const char* engineLabel(std::uint8_t engine) noexcept {
  switch (engine) {
    case 0: return "compute";
    case 1: return "h2d dma";
    case 2: return "d2h dma";
  }
  return "?";
}

const char* commandKindLabel(CommandKind kind) noexcept {
  switch (kind) {
    case CommandKind::Kernel: return "kernel";
    case CommandKind::Write: return "write";
    case CommandKind::Read: return "read";
    case CommandKind::CopyOnDevice: return "copy";
    case CommandKind::CopyPeer: return "copy_peer";
  }
  return "?";
}

const char* hostKindLabel(HostKind kind) noexcept {
  switch (kind) {
    case HostKind::Skeleton: return "skeleton";
    case HostKind::Build: return "build";
    case HostKind::CacheHit: return "cache_hit";
    case HostKind::Transfer: return "transfer";
    case HostKind::Redistribute: return "redistribute";
    case HostKind::Combine: return "combine";
    case HostKind::Scheduler: return "scheduler";
    case HostKind::TenantJob: return "tenant_job";
  }
  return "?";
}

const std::string& Trace::str(std::uint32_t index) const {
  COMMON_CHECK_MSG(index < strings.size(),
                   "trace string index out of range");
  return strings[index];
}

Recorder& Recorder::instance() {
  static Recorder recorder;
  return recorder;
}

void Recorder::start() {
  std::lock_guard lock(mutex_);
  trace_ = Trace{};
  internMap_.clear();
  counterTotals_.clear();
  trace_.strings.push_back(""); // index 0 = empty name
  internMap_.emplace("", 0);
  trace_.devices = devices_;
  enabled_.store(true, std::memory_order_relaxed);
}

Trace Recorder::stop() {
  std::lock_guard lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  Trace out = std::move(trace_);
  trace_ = Trace{};
  internMap_.clear();
  counterTotals_.clear();
  return out;
}

void Recorder::setDevices(std::vector<DeviceInfo> devices) {
  std::lock_guard lock(mutex_);
  devices_ = std::move(devices);
  if (enabled_.load(std::memory_order_relaxed)) {
    trace_.devices = devices_;
  }
}

std::uint32_t Recorder::internLocked(std::string_view s) {
  auto it = internMap_.find(std::string(s));
  if (it != internMap_.end()) {
    return it->second;
  }
  const auto index = std::uint32_t(trace_.strings.size());
  trace_.strings.emplace_back(s);
  internMap_.emplace(trace_.strings.back(), index);
  return index;
}

void Recorder::bumpCounterLocked(std::string_view name, std::uint32_t device,
                                 std::uint64_t timeNs, std::uint64_t delta) {
  const std::string key = std::string(name) + "#" + std::to_string(device);
  const std::uint64_t total = (counterTotals_[key] += delta);
  CounterRecord record;
  record.name = internLocked(name);
  record.device = device;
  record.timeNs = timeNs;
  record.value = total;
  trace_.counters.push_back(record);
}

void Recorder::recordCommand(const CommandInit& init) {
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  CommandRecord record;
  record.id = init.id;
  record.device = init.device;
  record.engine = init.engine;
  record.kind = init.kind;
  record.name = internLocked(init.label);
  record.queuedNs = init.queuedNs;
  record.submitNs = init.submitNs;
  record.startNs = init.startNs;
  record.endNs = init.endNs;
  record.bytes = init.bytes;
  record.cycles = init.cycles;
  if (init.deps != nullptr) {
    record.deps = *init.deps;
  }
  trace_.commands.push_back(std::move(record));

  // Direction counters implied by the engine the command occupied.
  switch (init.engine) {
    case 1: // H2D DMA
      bumpCounterLocked("h2d_bytes", init.device, init.endNs, init.bytes);
      break;
    case 2: // D2H DMA
      bumpCounterLocked("d2h_bytes", init.device, init.endNs, init.bytes);
      break;
    default:
      if (init.kind == CommandKind::Kernel) {
        bumpCounterLocked("kernel_cycles", init.device, init.endNs,
                          init.cycles);
      }
      break;
  }
}

void Recorder::recordHostSpan(HostKind kind, std::string_view name,
                              std::uint32_t device, std::uint64_t startNs,
                              std::uint64_t endNs, std::uint64_t value,
                              std::uint32_t lane) {
  if (t_captureBuffer != nullptr) {
    CapturedRecord captured;
    captured.isSpan = true;
    captured.kind = kind;
    captured.name = std::string(name);
    captured.device = device;
    captured.lane = lane;
    captured.startNs = startNs;
    captured.endNs = endNs;
    captured.value = value;
    t_captureBuffer->push_back(std::move(captured));
    return;
  }
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  HostSpanRecord record;
  record.name = internLocked(name);
  record.kind = kind;
  record.device = device;
  record.lane = lane;
  record.startNs = startNs;
  record.endNs = endNs;
  record.value = value;
  trace_.hostSpans.push_back(record);
}

void Recorder::bumpCounter(std::string_view name, std::uint32_t device,
                           std::uint64_t timeNs, std::uint64_t delta) {
  if (t_captureBuffer != nullptr) {
    CapturedRecord captured;
    captured.isSpan = false;
    captured.name = std::string(name);
    captured.device = device;
    captured.endNs = timeNs;
    captured.value = delta;
    t_captureBuffer->push_back(std::move(captured));
    return;
  }
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  bumpCounterLocked(name, device, timeNs, delta);
}

void Recorder::redirectThreadToBuffer(CaptureBuffer* buffer) noexcept {
  t_captureBuffer = buffer;
}

void Recorder::replay(CaptureBuffer& buffer) {
  std::lock_guard lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed)) {
    for (const CapturedRecord& c : buffer) {
      if (c.isSpan) {
        HostSpanRecord record;
        record.name = internLocked(c.name);
        record.kind = c.kind;
        record.device = c.device;
        record.lane = c.lane;
        record.startNs = c.startNs;
        record.endNs = c.endNs;
        record.value = c.value;
        trace_.hostSpans.push_back(record);
      } else {
        bumpCounterLocked(c.name, c.device, c.endNs, c.value);
      }
    }
  }
  buffer.clear();
}

void Recorder::recordCounter(std::string_view name, std::uint32_t device,
                             std::uint64_t timeNs, std::uint64_t value) {
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  CounterRecord record;
  record.name = internLocked(name);
  record.device = device;
  record.timeNs = timeNs;
  record.value = value;
  trace_.counters.push_back(record);
}

} // namespace trace
