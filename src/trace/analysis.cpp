#include "trace/analysis.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <unordered_map>

namespace trace {

namespace {

using Interval = std::pair<std::uint64_t, std::uint64_t>;

/// Sorts and merges touching/overlapping intervals in place.
std::vector<Interval> merged(std::vector<Interval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> out;
  for (const Interval& i : intervals) {
    if (i.second <= i.first) {
      continue; // zero-length command (e.g. empty transfer)
    }
    if (!out.empty() && i.first <= out.back().second) {
      out.back().second = std::max(out.back().second, i.second);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

std::uint64_t totalLength(const std::vector<Interval>& intervals) {
  std::uint64_t total = 0;
  for (const Interval& i : intervals) {
    total += i.second - i.first;
  }
  return total;
}

/// Length of the intersection of two merged interval lists.
std::uint64_t intersectionLength(const std::vector<Interval>& a,
                                 const std::vector<Interval>& b) {
  std::uint64_t total = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::uint64_t lo = std::max(a[i].first, b[j].first);
    const std::uint64_t hi = std::min(a[i].second, b[j].second);
    if (lo < hi) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

std::string msString(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.3f ms", double(ns) * 1e-6);
  return buf;
}

} // namespace

Report analyze(const Trace& trace) {
  Report report;

  // --- per-device engine occupancy --------------------------------------
  struct DeviceAccum {
    std::vector<Interval> engines[kEngineCount];
    std::uint64_t commands[kEngineCount] = {0, 0, 0};
    std::uint64_t minStart = ~0ull;
    std::uint64_t maxEnd = 0;
    std::uint64_t dmaBytes = 0;
    std::uint64_t kernelCycles = 0;
  };
  std::map<std::uint32_t, DeviceAccum> perDevice;
  std::uint64_t traceMin = ~0ull, traceMax = 0;

  for (const CommandRecord& c : trace.commands) {
    DeviceAccum& acc = perDevice[c.device];
    const std::uint8_t e = c.engine < kEngineCount ? c.engine : 0;
    acc.engines[e].emplace_back(c.startNs, c.endNs);
    ++acc.commands[e];
    if (e != 0) {
      acc.dmaBytes += c.bytes;
    }
    if (c.kind == CommandKind::Kernel) {
      acc.kernelCycles += c.cycles;
    }
    acc.minStart = std::min(acc.minStart, c.startNs);
    acc.maxEnd = std::max(acc.maxEnd, c.endNs);
    traceMin = std::min(traceMin, c.startNs);
    traceMax = std::max(traceMax, c.endNs);
  }
  report.spanNs = traceMax > traceMin ? traceMax - traceMin : 0;

  std::unordered_map<std::uint32_t, const DeviceInfo*> deviceInfos;
  for (const DeviceInfo& d : trace.devices) {
    deviceInfos[d.index] = &d;
  }

  std::uint64_t dmaBusyTotal = 0, overlapTotal = 0;
  for (auto& [index, acc] : perDevice) {
    DeviceReport dev;
    dev.device = index;
    auto named = deviceInfos.find(index);
    const DeviceInfo* info =
        named != deviceInfos.end() ? named->second : nullptr;
    dev.name = info != nullptr ? info->name
                               : "device " + std::to_string(index);
    dev.node = info != nullptr ? info->node : 0;
    dev.dmaBytes = acc.dmaBytes;
    dev.kernelCycles = acc.kernelCycles;
    dev.spanNs = acc.maxEnd - acc.minStart;

    std::vector<Interval> engineMerged[kEngineCount];
    for (std::uint8_t e = 0; e < kEngineCount; ++e) {
      engineMerged[e] = merged(std::move(acc.engines[e]));
      dev.engines[e].busyNs = totalLength(engineMerged[e]);
      dev.engines[e].commands = acc.commands[e];
      dev.engines[e].busyFraction =
          dev.spanNs == 0 ? 0.0
                          : double(dev.engines[e].busyNs) / double(dev.spanNs);
    }
    std::vector<Interval> dma = engineMerged[1];
    dma.insert(dma.end(), engineMerged[2].begin(), engineMerged[2].end());
    dma = merged(std::move(dma));
    dev.dmaBusyNs = totalLength(dma);
    dev.overlapNs = intersectionLength(dma, engineMerged[0]);
    dev.overlapRatio =
        dev.dmaBusyNs == 0 ? 0.0
                           : double(dev.overlapNs) / double(dev.dmaBusyNs);
    if (info != nullptr) {
      // 1 W = 1 nJ/ns, so watts x virtual ns is nanojoules. The device
      // draws idle power for the whole makespan (it is part of the
      // machine whether or not this trace kept it busy), the busy-idle
      // delta while its compute engine works, and the DMA energy per
      // byte it moved.
      const double energyNj =
          info->idlePowerW * double(report.spanNs) +
          (info->busyPowerW - info->idlePowerW) *
              double(dev.engines[0].busyNs) +
          info->transferNjPerByte * double(dev.dmaBytes);
      dev.energyJ = energyNj * 1e-9;
      dev.perfPerWatt =
          dev.energyJ > 0.0 ? double(dev.kernelCycles) / dev.energyJ : 0.0;
    }
    dmaBusyTotal += dev.dmaBusyNs;
    overlapTotal += dev.overlapNs;
    report.devices.push_back(std::move(dev));
  }
  report.overlapRatio =
      dmaBusyTotal == 0 ? 0.0 : double(overlapTotal) / double(dmaBusyTotal);

  // --- per-node energy/work rollups --------------------------------------
  {
    std::map<std::uint32_t, NodeReport> nodes;
    for (const DeviceReport& d : report.devices) {
      NodeReport& node = nodes[d.node];
      node.node = d.node;
      ++node.devices;
      node.computeBusyNs += d.engines[0].busyNs;
      node.kernelCycles += d.kernelCycles;
      node.energyJ += d.energyJ;
    }
    for (auto& [index, node] : nodes) {
      node.perfPerWatt = node.energyJ > 0.0
                             ? double(node.kernelCycles) / node.energyJ
                             : 0.0;
      report.totalEnergyJ += node.energyJ;
      report.nodes.push_back(node);
    }
    std::uint64_t cyclesTotal = 0;
    for (const NodeReport& node : report.nodes) {
      cyclesTotal += node.kernelCycles;
    }
    report.perfPerWatt = report.totalEnergyJ > 0.0
                             ? double(cyclesTotal) / report.totalEnergyJ
                             : 0.0;
  }

  // --- compute load balance ----------------------------------------------
  std::uint64_t computeTotal = 0, computeMax = 0;
  for (const DeviceReport& d : report.devices) {
    computeTotal += d.engines[0].busyNs;
    computeMax = std::max(computeMax, d.engines[0].busyNs);
  }
  for (DeviceReport& d : report.devices) {
    d.loadShare = computeTotal == 0
                      ? 0.0
                      : double(d.engines[0].busyNs) / double(computeTotal);
  }
  if (computeTotal > 0 && !report.devices.empty()) {
    const double mean =
        double(computeTotal) / double(report.devices.size());
    report.computeImbalance = double(computeMax) / mean - 1.0;
  }

  // --- top kernels -------------------------------------------------------
  std::map<std::string, KernelReport> kernels;
  for (const CommandRecord& c : trace.commands) {
    if (c.kind != CommandKind::Kernel) {
      continue;
    }
    KernelReport& k = kernels[trace.str(c.name)];
    k.name = trace.str(c.name);
    ++k.launches;
    ++report.kernelLaunches;
    k.totalNs += c.endNs - c.startNs;
    k.cycles += c.cycles;
  }
  for (auto& [name, k] : kernels) {
    report.kernels.push_back(std::move(k));
  }
  std::sort(report.kernels.begin(), report.kernels.end(),
            [](const KernelReport& a, const KernelReport& b) {
              return a.totalNs != b.totalNs ? a.totalNs > b.totalNs
                                            : a.name < b.name;
            });

  // --- critical path through the dependency DAG -------------------------
  // Predecessors: recorded event deps plus the implicit FIFO predecessor
  // on the command's engine. Commands are processed in ascending id
  // order; every dependency id is smaller than its dependent's.
  std::vector<const CommandRecord*> byId;
  byId.reserve(trace.commands.size());
  for (const CommandRecord& c : trace.commands) {
    byId.push_back(&c);
  }
  std::sort(byId.begin(), byId.end(),
            [](const CommandRecord* a, const CommandRecord* b) {
              return a->id < b->id;
            });
  std::unordered_map<std::uint64_t, std::uint64_t> pathById;
  std::map<std::pair<std::uint32_t, std::uint8_t>, std::uint64_t> engineTail;
  for (const CommandRecord* c : byId) {
    std::uint64_t longestPred = 0;
    for (std::uint64_t dep : c->deps) {
      auto it = pathById.find(dep);
      if (it != pathById.end()) {
        longestPred = std::max(longestPred, it->second);
      }
    }
    auto& tail = engineTail[{c->device, c->engine}];
    longestPred = std::max(longestPred, tail);
    const std::uint64_t path = longestPred + (c->endNs - c->startNs);
    pathById[c->id] = path;
    tail = std::max(tail, path);
    report.criticalPathNs = std::max(report.criticalPathNs, path);
  }

  // --- counters & host spans --------------------------------------------
  // Counters are cumulative; the final sample per (name, device) is the
  // total. Totals are summed across devices.
  std::map<std::pair<std::string, std::uint32_t>, std::uint64_t> finals;
  for (const CounterRecord& c : trace.counters) {
    finals[{trace.str(c.name), c.device}] = c.value;
  }
  std::map<std::string, TenantReport> tenants;
  for (const auto& [key, value] : finals) {
    // "tenant.<name>.cycles" / "tenant.<name>.bytes" — per-tenant job
    // service accounting.
    if (key.first.rfind("tenant.", 0) == 0) {
      const std::string rest = key.first.substr(7);
      const std::size_t dot = rest.rfind('.');
      if (dot != std::string::npos) {
        const std::string name = rest.substr(0, dot);
        const std::string metric = rest.substr(dot + 1);
        if (metric == "cycles") {
          tenants[name].deviceCycles += value;
        } else if (metric == "bytes") {
          tenants[name].bytesMoved += value;
        }
      }
      continue;
    }
    if (key.first == "h2d_bytes") {
      report.h2dBytes += value;
    } else if (key.first == "d2h_bytes") {
      report.d2hBytes += value;
    } else if (key.first == "kernel_cycles") {
      report.kernelCycles += value;
    } else if (key.first == "cache_hits") {
      report.cacheHits += value;
    } else if (key.first == "cache_misses") {
      report.cacheMisses += value;
    } else if (key.first == "intermediate_bytes") {
      report.intermediateBytes += value;
    } else if (key.first == "halo_bytes") {
      report.haloBytes += value;
    } else if (key.first == "sched_concurrent_jobs") {
      report.maxConcurrentJobs =
          std::max(report.maxConcurrentJobs, value);
    } else if (key.first == "internode_bytes") {
      report.internodeBytes += value;
    }
  }
  for (const HostSpanRecord& h : trace.hostSpans) {
    if (h.kind == HostKind::Skeleton) {
      ++report.skeletonSpans;
    } else if (h.kind == HostKind::Scheduler) {
      ++report.schedulerJobs;
      report.schedQueueWaitNs += h.value;
    } else if (h.kind == HostKind::TenantJob) {
      TenantReport& tenant = tenants[trace.str(h.name)];
      ++tenant.jobs;
      tenant.execNs += h.endNs - h.startNs;
      tenant.queueWaitNs += h.value;
    }
  }
  for (auto& [name, tenant] : tenants) {
    tenant.name = name;
    report.tenants.push_back(std::move(tenant));
  }
  return report;
}

std::string formatReport(const Report& report, std::size_t topN) {
  std::string out;
  char line[256];

  out += "trace span: " + msString(report.spanNs) +
         "   critical path: " + msString(report.criticalPathNs);
  if (report.spanNs != 0) {
    out += " (" +
           percent(double(report.criticalPathNs) / double(report.spanNs)) +
           " of span)";
  }
  out += "\n";
  std::snprintf(line, sizeof(line),
                "h2d: %llu bytes   d2h: %llu bytes   kernel cycles: %llu   "
                "cache hits/misses: %llu/%llu   skeleton spans: %llu\n",
                (unsigned long long)report.h2dBytes,
                (unsigned long long)report.d2hBytes,
                (unsigned long long)report.kernelCycles,
                (unsigned long long)report.cacheHits,
                (unsigned long long)report.cacheMisses,
                (unsigned long long)report.skeletonSpans);
  out += line;
  std::snprintf(line, sizeof(line),
                "kernel launches: %llu   intermediate bytes: %llu   "
                "halo bytes: %llu\n",
                (unsigned long long)report.kernelLaunches,
                (unsigned long long)report.intermediateBytes,
                (unsigned long long)report.haloBytes);
  out += line;
  if (report.schedulerJobs > 0) {
    std::snprintf(line, sizeof(line),
                  "scheduler: %llu async job(s)   queue wait: %.3f ms   "
                  "max concurrent jobs: %llu\n",
                  (unsigned long long)report.schedulerJobs,
                  double(report.schedQueueWaitNs) * 1e-6,
                  (unsigned long long)report.maxConcurrentJobs);
    out += line;
  }

  if (!report.tenants.empty()) {
    out += "\ntenants (job service)\n";
    std::snprintf(line, sizeof(line), "%-16s %6s %12s %14s %14s %12s\n",
                  "tenant", "jobs", "exec ms", "queue wait ms", "cycles",
                  "bytes");
    out += line;
    for (const TenantReport& t : report.tenants) {
      std::snprintf(line, sizeof(line),
                    "%-16.16s %6llu %12.3f %14.3f %14llu %12llu\n",
                    t.name.c_str(), (unsigned long long)t.jobs,
                    double(t.execNs) * 1e-6, double(t.queueWaitNs) * 1e-6,
                    (unsigned long long)t.deviceCycles,
                    (unsigned long long)t.bytesMoved);
      out += line;
    }
  }

  out += "\nper-device engine utilization (busy% of device span)\n";
  std::snprintf(line, sizeof(line),
                "%-4s %-28s %13s %13s %13s %9s %7s %8s %10s\n", "node",
                "device", "compute", "h2d dma", "d2h dma", "overlap",
                "load", "span ms", "joules");
  out += line;
  for (const DeviceReport& d : report.devices) {
    std::snprintf(
        line, sizeof(line),
        "n%-3u %-28.28s %6s (%4llu) %6s (%4llu) %6s (%4llu) %8s %7s "
        "%8.3f %10.3f\n",
        d.node, (std::to_string(d.device) + ": " + d.name).c_str(),
        percent(d.engines[0].busyFraction).c_str(),
        (unsigned long long)d.engines[0].commands,
        percent(d.engines[1].busyFraction).c_str(),
        (unsigned long long)d.engines[1].commands,
        percent(d.engines[2].busyFraction).c_str(),
        (unsigned long long)d.engines[2].commands,
        percent(d.overlapRatio).c_str(), percent(d.loadShare).c_str(),
        double(d.spanNs) * 1e-6, d.energyJ);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "aggregate transfer/compute overlap ratio: %.3f   "
                "compute load imbalance: %.1f%%\n",
                report.overlapRatio, report.computeImbalance * 100.0);
  out += line;

  if (report.totalEnergyJ > 0.0) {
    out += "\nper-node energy (idle x span + (busy-idle) x compute busy "
           "+ nJ/byte x DMA bytes)\n";
    std::snprintf(line, sizeof(line), "%-4s %7s %14s %12s %10s %16s\n",
                  "node", "devices", "compute ms", "joules", "watts",
                  "cycles/joule");
    out += line;
    for (const NodeReport& n : report.nodes) {
      const double watts = report.spanNs > 0
                               ? n.energyJ / (double(report.spanNs) * 1e-9)
                               : 0.0;
      std::snprintf(line, sizeof(line),
                    "n%-3u %7u %14.3f %12.3f %10.1f %16.3e\n", n.node,
                    n.devices, double(n.computeBusyNs) * 1e-6, n.energyJ,
                    watts, n.perfPerWatt);
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "total energy: %.3f J   perf-per-watt: %.3e cycles/J   "
                  "cross-node traffic: %llu bytes\n",
                  report.totalEnergyJ, report.perfPerWatt,
                  (unsigned long long)report.internodeBytes);
    out += line;
  }

  out += "\ntop kernels (by engine time)\n";
  std::size_t shown = 0;
  for (const KernelReport& k : report.kernels) {
    if (shown++ == topN) {
      break;
    }
    std::snprintf(line, sizeof(line), "%-32.32s %6llu launches %s %14llu cycles\n",
                  k.name.c_str(), (unsigned long long)k.launches,
                  msString(k.totalNs).c_str(), (unsigned long long)k.cycles);
    out += line;
  }
  if (report.kernels.empty()) {
    out += "(no kernel launches)\n";
  }
  return out;
}

} // namespace trace
