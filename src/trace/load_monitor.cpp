#include "trace/load_monitor.h"

namespace trace {

LoadMonitor& LoadMonitor::instance() {
  static LoadMonitor monitor;
  return monitor;
}

void LoadMonitor::reset(std::size_t deviceCount) {
  std::lock_guard lock(mutex_);
  loads_.assign(deviceCount, DeviceLoad{});
}

void LoadMonitor::addKernel(std::uint32_t device, std::uint64_t cycles,
                            std::uint64_t durationNs) noexcept {
  std::lock_guard lock(mutex_);
  if (device >= loads_.size()) {
    return;
  }
  DeviceLoad& load = loads_[device];
  load.kernelCycles += cycles;
  load.computeBusyNs += durationNs;
  ++load.launches;
}

std::vector<DeviceLoad> LoadMonitor::snapshot() const {
  std::lock_guard lock(mutex_);
  return loads_;
}

bool LoadMonitor::allDevicesSampled() const {
  std::lock_guard lock(mutex_);
  if (loads_.empty()) {
    return false;
  }
  for (const DeviceLoad& load : loads_) {
    if (load.launches == 0) {
      return false;
    }
  }
  return true;
}

} // namespace trace
