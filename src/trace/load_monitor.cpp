#include "trace/load_monitor.h"

namespace trace {

LoadMonitor& LoadMonitor::instance() {
  static LoadMonitor monitor;
  return monitor;
}

void LoadMonitor::reset(std::size_t deviceCount) {
  std::lock_guard lock(mutex_);
  loads_.assign(deviceCount, DeviceLoad{});
  tenants_.clear();
  activeTenant_ = kNoTenant;
}

void LoadMonitor::addKernel(std::uint32_t device, std::uint64_t cycles,
                            std::uint64_t durationNs) noexcept {
  std::lock_guard lock(mutex_);
  if (activeTenant_ < tenants_.size()) {
    TenantLoad& tenant = tenants_[activeTenant_];
    tenant.deviceCycles += cycles;
    tenant.computeBusyNs += durationNs;
    ++tenant.launches;
  }
  if (device >= loads_.size()) {
    return;
  }
  DeviceLoad& load = loads_[device];
  load.kernelCycles += cycles;
  load.computeBusyNs += durationNs;
  ++load.launches;
}

void LoadMonitor::addTransfer(std::uint32_t device,
                              std::uint64_t bytes) noexcept {
  std::lock_guard lock(mutex_);
  if (activeTenant_ < tenants_.size()) {
    tenants_[activeTenant_].bytesMoved += bytes;
  }
  if (device < loads_.size()) {
    loads_[device].bytesMoved += bytes;
  }
}

std::vector<DeviceLoad> LoadMonitor::snapshot() const {
  std::lock_guard lock(mutex_);
  return loads_;
}

bool LoadMonitor::allDevicesSampled() const {
  std::lock_guard lock(mutex_);
  if (loads_.empty()) {
    return false;
  }
  for (const DeviceLoad& load : loads_) {
    if (load.launches == 0) {
      return false;
    }
  }
  return true;
}

std::size_t LoadMonitor::registerTenant(const std::string& name) {
  std::lock_guard lock(mutex_);
  tenants_.push_back(TenantLoad{});
  tenants_.back().name = name;
  return tenants_.size() - 1;
}

void LoadMonitor::beginTenantScope(std::size_t tenant) noexcept {
  std::lock_guard lock(mutex_);
  activeTenant_ = tenant;
}

void LoadMonitor::endTenantScope() noexcept {
  std::lock_guard lock(mutex_);
  activeTenant_ = kNoTenant;
}

void LoadMonitor::noteTenantJob(std::size_t tenant,
                                std::uint64_t queueWaitNs) noexcept {
  std::lock_guard lock(mutex_);
  if (tenant >= tenants_.size()) {
    return;
  }
  ++tenants_[tenant].jobs;
  tenants_[tenant].queueWaitNs += queueWaitNs;
}

TenantLoad LoadMonitor::tenantLoad(std::size_t tenant) const {
  std::lock_guard lock(mutex_);
  if (tenant >= tenants_.size()) {
    return TenantLoad{};
  }
  return tenants_[tenant];
}

std::vector<TenantLoad> LoadMonitor::tenantSnapshot() const {
  std::lock_guard lock(mutex_);
  return tenants_;
}

} // namespace trace
