// Trace analysis: the numbers behind `skeltrace` and the perf-smoke
// overlap checks.
//
// Definitions (all in virtual nanoseconds over one trace):
//  * device span     — first command start .. last command end on that
//                      device; busy% is per-engine busy time over it.
//  * overlap ratio   — |DMA busy ∩ compute busy| / |DMA busy| per
//                      device, aggregated over devices as a busy-time-
//                      weighted mean. Under in-order (serialized)
//                      queues every command waits for the whole device,
//                      so the ratio is exactly 0; out-of-order queues
//                      make it the fraction of transfer time actually
//                      hidden behind kernels.
//  * critical path   — longest dependency chain through the command
//                      DAG, where each command's predecessors are its
//                      recorded event dependencies plus the implicit
//                      FIFO predecessor on its engine. An estimate of
//                      the best possible makespan for this command set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace trace {

struct EngineReport {
  std::uint64_t busyNs = 0;
  std::uint64_t commands = 0;
  double busyFraction = 0.0; // of the device span
};

struct DeviceReport {
  std::uint32_t device = 0;
  std::string name;
  std::uint32_t node = 0; // cluster node (from DeviceInfo; 0 if unknown)
  EngineReport engines[kEngineCount];
  std::uint64_t spanNs = 0;    // first start .. last end on this device
  std::uint64_t dmaBusyNs = 0; // union of both DMA engines
  std::uint64_t overlapNs = 0; // DMA busy while compute busy
  double overlapRatio = 0.0;   // overlapNs / dmaBusyNs (0 when no DMA)
  /// This device's share of the whole trace's compute busy time. On a
  /// perfectly balanced D-device run every share is 1/D; skew shows
  /// which devices carry the load.
  double loadShare = 0.0;
  /// DMA payload bytes this device moved (H2D + D2H engine commands).
  std::uint64_t dmaBytes = 0;
  /// VM cycles this device's kernels retired.
  std::uint64_t kernelCycles = 0;
  /// Energy over the whole-trace makespan: the device idles at
  /// DeviceInfo::idlePowerW for the full span, adds (busy - idle) watts
  /// while its compute engine is busy, and pays transferNjPerByte per
  /// DMA byte. Zero when the trace carries no power data (pre-v3 traces
  /// or synthetic DeviceInfo-less traces).
  double energyJ = 0.0;
  /// kernelCycles / energyJ — cycles of useful work per joule.
  double perfPerWatt = 0.0;
};

/// Rollup of one cluster node's devices.
struct NodeReport {
  std::uint32_t node = 0;
  std::uint32_t devices = 0;
  std::uint64_t computeBusyNs = 0;
  std::uint64_t kernelCycles = 0;
  double energyJ = 0.0;
  double perfPerWatt = 0.0; // kernelCycles / energyJ
};

struct KernelReport {
  std::string name;
  std::uint64_t launches = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t cycles = 0;
};

/// Per-tenant job-service activity, from HostKind::TenantJob spans (one
/// per completed job: dispatch..completion, value = queue wait) and the
/// "tenant.<name>.cycles" / "tenant.<name>.bytes" counters.
struct TenantReport {
  std::string name;
  std::uint64_t jobs = 0;
  std::uint64_t execNs = 0;      // summed dispatch..completion spans
  std::uint64_t queueWaitNs = 0; // summed submission->dispatch waits
  std::uint64_t deviceCycles = 0;
  std::uint64_t bytesMoved = 0;
};

struct Report {
  std::vector<DeviceReport> devices;
  std::vector<NodeReport> nodes;     // one row per cluster node
  std::vector<KernelReport> kernels; // sorted by totalNs, descending
  std::vector<TenantReport> tenants; // sorted by name; empty: no service
  std::uint64_t spanNs = 0;          // whole-trace makespan
  std::uint64_t criticalPathNs = 0;
  double overlapRatio = 0.0; // aggregate (DMA-busy-weighted)
  /// Per-device load imbalance: max(compute busy) / mean(compute busy)
  /// - 1, over devices that ran at least one command. 0 = perfectly
  /// balanced; 1 = the busiest device worked twice the average. The
  /// number weighted block distributions exist to drive toward 0.
  double computeImbalance = 0.0;
  std::uint64_t h2dBytes = 0;
  std::uint64_t d2hBytes = 0;
  std::uint64_t kernelCycles = 0;
  std::uint64_t kernelLaunches = 0; // kernel commands in the trace
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t skeletonSpans = 0;
  /// Bytes of intermediate vectors materialized between skeleton stages
  /// (from the "intermediate_bytes" counter). Kernel fusion exists to
  /// drive this — and the launch count — down.
  std::uint64_t intermediateBytes = 0;
  /// Bytes shipped between devices as stencil halo rows (from the
  /// "halo_bytes" counter). Scales with the cut surface, not the
  /// volume — the quantity multi-device stencils try to overlap away.
  std::uint64_t haloBytes = 0;
  /// Async task-graph scheduler activity: jobs dispatched by drains
  /// (HostKind::Scheduler spans), the summed virtual time jobs spent
  /// registered-but-undispatched (each span's value), and the largest
  /// number of jobs outstanding at any drain (the
  /// "sched_concurrent_jobs" counter's final — monotone — sample). All
  /// zero for synchronous (SKELCL_ASYNC=0) runs.
  std::uint64_t schedulerJobs = 0;
  std::uint64_t schedQueueWaitNs = 0;
  std::uint64_t maxConcurrentJobs = 0;
  /// Bytes shipped across the simulated interconnect (cross-node peer
  /// copies; from the "internode_bytes" counter). Zero on single-node
  /// machines.
  std::uint64_t internodeBytes = 0;
  /// Whole-machine energy over the makespan (sum of device energyJ).
  double totalEnergyJ = 0.0;
  /// Whole-machine kernelCycles / totalEnergyJ.
  double perfPerWatt = 0.0;
};

Report analyze(const Trace& trace);

/// Human-readable per-device utilization/overlap report, `topN` kernels.
std::string formatReport(const Report& report, std::size_t topN = 10);

} // namespace trace
