// Compact binary trace format ("SKTR"), built on common/byte_stream.
//
// The binary form is the analyzer's native input (skeltrace) and the
// determinism-test medium: serializing the same Trace always yields the
// same bytes. writeTraceFile dispatches on the file extension — a path
// ending in ".json" gets the Chrome trace-event export, everything else
// the binary format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace trace {

/// v2: HostSpanRecord gained `lane` (host row for scheduler spans).
/// v3: DeviceInfo gained `node` and the power envelope (idle/busy watts,
///     transfer nJ/byte) behind the cluster energy analysis.
inline constexpr std::uint32_t kBinaryVersion = 3;

std::vector<std::uint8_t> serialize(const Trace& trace);

/// Throws common::DeserializeError on malformed input (bad magic,
/// unknown version, truncated stream).
Trace deserialize(const std::vector<std::uint8_t>& bytes);

/// Extension-dispatched writer: ".json" -> Chrome trace JSON, anything
/// else -> binary. Throws common::IoError on write failure.
void writeTraceFile(const std::string& path, const Trace& trace);

/// Reads a binary trace file (the skeltrace input format).
Trace readTraceFile(const std::string& path);

} // namespace trace
