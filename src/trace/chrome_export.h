// Chrome trace-event JSON export.
//
// Row mapping: each simulated device becomes one *process* (pid =
// device index + 1) with three named *threads* — one per engine
// (compute / h2d dma / d2h dma) — so transfer/compute overlap is
// directly visible as horizontally overlapping slices in
// chrome://tracing or Perfetto. Host-side runtime spans (skeletons,
// builds, transfers) live in pid 0 ("SkelCL host"). Counters render as
// Chrome "C" counter tracks per device.
#pragma once

#include <string>

#include "trace/trace.h"

namespace trace {

/// Renders `trace` as a Chrome trace-event JSON object
/// ({"traceEvents": [...]}). Deterministic: the same trace always
/// produces the same string.
std::string chromeJson(const Trace& trace);

} // namespace trace
