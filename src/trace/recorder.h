// trace::Recorder — the process-wide sink the instrumented layers emit
// into.
//
// Overhead contract: when recording is off, every emit hook reduces to
// one relaxed atomic load (`Recorder::enabled()`); callers must check it
// *before* building labels or dependency lists, so a run with tracing
// disabled executes the exact same virtual-time schedule as an
// uninstrumented build. The recorder only ever *reads* the virtual
// clock — it never advances it — so the schedule is also invariant with
// tracing on (asserted by tests/trace/determinism_test.cpp).
//
// Thread safety: all mutation happens under one mutex; the enabled flag
// is atomic so the disabled fast path stays lock-free. Emission order
// under the lock is the enqueue order, which is what makes traces of a
// deterministic workload byte-identical across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "trace/trace.h"

namespace trace {

/// Virtual "now" in nanoseconds, read through the time source the
/// simulation layer registers (ocl::hostTimeNs). Returns 0 before any
/// source is registered.
std::uint64_t now() noexcept;
void setTimeSource(std::uint64_t (*source)() noexcept) noexcept;

class Recorder {
public:
  static Recorder& instance();

  /// Disabled fast path: one relaxed atomic load.
  static bool enabled() noexcept {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Clears any previously collected data and starts recording.
  void start();

  /// Stops recording and returns everything collected since start().
  /// Harmless when recording never started (returns an empty trace).
  Trace stop();

  /// Identity of the simulated devices; kept across start()/stop() and
  /// refreshed by ocl::configureSystem regardless of the enabled state.
  void setDevices(std::vector<DeviceInfo> devices);

  /// Everything needed to file one engine span. `deps` may be null.
  struct CommandInit {
    std::uint64_t id = 0;
    std::uint32_t device = 0;
    std::uint8_t engine = 0;
    CommandKind kind = CommandKind::Kernel;
    std::string_view label;
    std::uint64_t queuedNs = 0;
    std::uint64_t submitNs = 0;
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    std::uint64_t bytes = 0;
    std::uint64_t cycles = 0;
    const std::vector<std::uint64_t>* deps = nullptr;
  };

  /// Files an engine span and advances the per-device direction
  /// counters it implies (h2d_bytes / d2h_bytes / kernel_cycles).
  void recordCommand(const CommandInit& init);

  void recordHostSpan(HostKind kind, std::string_view name,
                      std::uint32_t device, std::uint64_t startNs,
                      std::uint64_t endNs, std::uint64_t value = 0,
                      std::uint32_t lane = 0);

  /// Files a cumulative counter sample (value is the new total).
  void recordCounter(std::string_view name, std::uint32_t device,
                     std::uint64_t timeNs, std::uint64_t value);

  /// Advances a counter by `delta` and files the new per-trace total.
  /// Totals reset at start(), so traces never leak process-lifetime
  /// statistics (which would break run-to-run trace determinism).
  void bumpCounter(std::string_view name, std::uint32_t device,
                   std::uint64_t timeNs, std::uint64_t delta);

  // --- deferred capture (async scheduler prepare phase) -----------------
  // Host spans and counter bumps emitted from thread-pool workers would
  // land in the trace in worker-timing order, breaking byte-identical
  // run-to-run traces. A worker instead redirects its emissions into a
  // thread-local buffer; the scheduler replays the buffers from the
  // dispatch thread in a deterministic order. Engine command records
  // never need this: workers only run pure host-side work (kernel
  // builds) and never enqueue device commands.

  /// One buffered emission; spans and counter bumps share the struct.
  struct CapturedRecord {
    bool isSpan = true;
    HostKind kind = HostKind::Build;
    std::string name;
    std::uint32_t device = kNoDevice;
    std::uint32_t lane = 0;
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0; // counters: sample time
    std::uint64_t value = 0; // counters: delta
  };
  using CaptureBuffer = std::vector<CapturedRecord>;

  /// Redirects this thread's recordHostSpan/bumpCounter calls into
  /// `buffer` (nullptr restores direct recording).
  static void redirectThreadToBuffer(CaptureBuffer* buffer) noexcept;

  /// Emits `buffer`'s records in order, as if recorded now on the
  /// calling thread, and clears it.
  void replay(CaptureBuffer& buffer);

private:
  Recorder() = default;

  std::uint32_t internLocked(std::string_view s);
  void bumpCounterLocked(std::string_view name, std::uint32_t device,
                         std::uint64_t timeNs, std::uint64_t delta);

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  Trace trace_;
  std::vector<DeviceInfo> devices_;
  std::unordered_map<std::string, std::uint32_t> internMap_;
  std::unordered_map<std::string, std::uint64_t> counterTotals_;
};

/// RAII host span: captures virtual start/end around a runtime phase.
/// Free when recording is disabled (one atomic load in the constructor,
/// nothing in the destructor).
class ScopedHostSpan {
public:
  ScopedHostSpan(HostKind kind, const char* name,
                 std::uint32_t device = kNoDevice, std::uint64_t value = 0)
      : active_(Recorder::enabled()),
        kind_(kind),
        name_(name),
        device_(device),
        value_(value),
        startNs_(active_ ? now() : 0) {}

  ScopedHostSpan(const ScopedHostSpan&) = delete;
  ScopedHostSpan& operator=(const ScopedHostSpan&) = delete;

  void setValue(std::uint64_t value) noexcept { value_ = value; }

  ~ScopedHostSpan() {
    if (active_) {
      Recorder::instance().recordHostSpan(kind_, name_, device_, startNs_,
                                          now(), value_);
    }
  }

private:
  bool active_;
  HostKind kind_;
  const char* name_;
  std::uint32_t device_;
  std::uint64_t value_;
  std::uint64_t startNs_;
};

} // namespace trace
