// Virtual-time trace data model.
//
// A Trace is the structured record of one SkelCL run on the simulated
// machine: per-command *engine spans* (where every enqueued command sat
// on its device's compute/H2D/D2H timeline, in virtual nanoseconds, plus
// the dependency edges that constrained it), *host spans* (what the
// runtime was doing: which skeleton, kernel build vs cache hit, lazy
// transfer, redistribution), and monotone *counters* (bytes moved per
// DMA direction, kernel cycles, kernel-cache hits/misses).
//
// The model is deliberately plain data: the Recorder (recorder.h)
// produces it, serialize.h round-trips it through a compact binary
// format, chrome_export.h renders it as Chrome trace-event JSON, and
// analysis.h computes utilization/overlap reports from it. Everything
// is expressed in plain integers (device index, engine index, string-
// table ids) so this layer depends only on `common` — the ocl layer
// links *against* it to emit records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace trace {

/// Engine indices mirror ocl::Engine (compute / H2D DMA / D2H DMA).
inline constexpr std::uint8_t kEngineCount = 3;

const char* engineLabel(std::uint8_t engine) noexcept;

/// Device index meaning "no particular device" (host-global records).
inline constexpr std::uint32_t kNoDevice = 0xffffffffu;

/// What kind of command an engine span represents.
enum class CommandKind : std::uint8_t {
  Kernel = 0,       // ND-range launch on the compute engine
  Write = 1,        // host->device upload (H2D DMA)
  Read = 2,         // device->host download (D2H DMA)
  CopyOnDevice = 3, // same-device buffer copy (compute engine)
  CopyPeer = 4,     // cross-device copy leg (src D2H or dst H2D)
};

const char* commandKindLabel(CommandKind kind) noexcept;

/// What a host-side span represents.
enum class HostKind : std::uint8_t {
  Skeleton = 0,     // one skeleton invocation (Map, Zip, Reduce, ...)
  Build = 1,        // kernel source compiled (cache miss)
  CacheHit = 2,     // kernel loaded from the binary cache
  Transfer = 3,     // lazy Vector upload/download batch
  Redistribute = 4, // distribution change staged through the host
  Combine = 5,      // copy->block merge with a user combine function
  Scheduler = 6,    // async task-graph job: registration .. dispatch end
  TenantJob = 7,    // job service: one tenant job, dispatch .. completion
};

const char* hostKindLabel(HostKind kind) noexcept;

/// One command's occupancy of a device engine, mirroring
/// CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END}. `deps` lists the ids
/// of the events the command waited on (its incoming DAG edges; for
/// in-order queues this includes the implicit previous-command edge).
struct CommandRecord {
  std::uint64_t id = 0;
  std::uint32_t device = 0;
  std::uint8_t engine = 0;
  CommandKind kind = CommandKind::Kernel;
  std::uint32_t name = 0; // string-table index (kernel or command label)
  std::uint64_t queuedNs = 0;
  std::uint64_t submitNs = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
  std::uint64_t bytes = 0;  // payload (transfers) or global traffic (kernels)
  std::uint64_t cycles = 0; // simulated kernel cycles (kernels only)
  std::vector<std::uint64_t> deps;
};

/// One host-side runtime span. `value` depends on the kind: bytes for
/// Transfer, source length for Build, queue-wait nanoseconds for
/// Scheduler and TenantJob (whose name is the tenant), otherwise 0.
/// `lane` is the host row the span renders on:
/// 0 is the runtime thread; Scheduler spans use one lane per
/// concurrently outstanding job so overlapping jobs don't collide.
struct HostSpanRecord {
  std::uint32_t name = 0; // string-table index
  HostKind kind = HostKind::Skeleton;
  std::uint32_t device = kNoDevice;
  std::uint32_t lane = 0;
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
  std::uint64_t value = 0;
};

/// A cumulative counter sample ("h2d_bytes" on device 2 reached V at
/// time T). Values are monotone within one trace.
struct CounterRecord {
  std::uint32_t name = 0; // string-table index
  std::uint32_t device = kNoDevice;
  std::uint64_t timeNs = 0;
  std::uint64_t value = 0;
};

/// Identity of one simulated device: pid labeling in exports, plus the
/// node placement and power envelope the energy analysis runs on
/// (joules = idle x span + (busy - idle) x compute busy + nJ/byte x
/// bytes moved; 1 W = 1 nJ/ns).
struct DeviceInfo {
  std::uint32_t index = 0;
  std::string name;
  std::uint32_t node = 0;         // cluster node hosting this device
  double idlePowerW = 0.0;        // board power while idle
  double busyPowerW = 0.0;        // board power with compute busy
  double transferNjPerByte = 0.0; // DMA energy per byte moved
};

struct Trace {
  std::vector<std::string> strings; // interned names; index 0 is ""
  std::vector<DeviceInfo> devices;
  std::vector<CommandRecord> commands;
  std::vector<HostSpanRecord> hostSpans;
  std::vector<CounterRecord> counters;

  const std::string& str(std::uint32_t index) const;
  bool empty() const noexcept {
    return commands.empty() && hostSpans.empty() && counters.empty();
  }
};

} // namespace trace
