// SkelCL Mandelbrot (paper Sec. IV-A): a Map skeleton over a vector of
// pixel coordinates. SkelCL hides device discovery, buffer management,
// transfers, and launch geometry; specifying a work-group size is
// optional.
#include "mandelbrot/mandelbrot.h"

#include "common/stopwatch.h"
#include "mandelbrot_skelcl_source.h"
#include "skelcl/skelcl.h"

namespace mandelbrot {

namespace {

struct PixelPos {
  float re;
  float im;
};

} // namespace

FractalResult computeSkelCl(const FractalParams& params,
                            std::size_t workGroupSize) {
  common::Stopwatch wall;
  const auto virtualStart = ocl::hostTimeNs();

  skelcl::registerType<PixelPos>(
      "PixelPos", "typedef struct { float re; float im; } PixelPos;");

  skelcl::Map<PixelPos, std::int32_t> mandelbrotMap(kMandelbrotSkelClSource);
  if (workGroupSize != 0) {
    mandelbrotMap.setWorkGroupSize(workGroupSize);
  }

  // A vector of complex numbers, one per pixel of the fractal.
  std::vector<PixelPos> positions(params.pixels());
  for (std::uint32_t py = 0; py < params.height; ++py) {
    for (std::uint32_t px = 0; px < params.width; ++px) {
      positions[std::size_t(py) * params.width + px] = PixelPos{
          params.x0() + float(px) * params.dx(),
          params.y0() + float(py) * params.dy()};
    }
  }
  skelcl::Vector<PixelPos> input(std::move(positions));

  skelcl::Arguments args;
  args.push(std::int32_t(params.maxIterations));
  skelcl::Vector<std::int32_t> output = mandelbrotMap(input, args);

  FractalResult result;
  result.iterations = output.hostData();
  result.virtualSeconds = double(ocl::hostTimeNs() - virtualStart) * 1e-9;
  result.wallSeconds = wall.elapsedSeconds();
  return result;
}

} // namespace mandelbrot
