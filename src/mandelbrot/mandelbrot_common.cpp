#include "mandelbrot/mandelbrot.h"

#include <fstream>

#include "common/error.h"
#include "common/stopwatch.h"
#include "ocl/device.h"

namespace mandelbrot {

FractalResult computeReference(const FractalParams& params) {
  common::Stopwatch wall;
  FractalResult result;
  result.iterations.resize(params.pixels());
  const float x0 = params.x0();
  const float y0 = params.y0();
  const float dx = params.dx();
  const float dy = params.dy();
  for (std::uint32_t py = 0; py < params.height; ++py) {
    for (std::uint32_t px = 0; px < params.width; ++px) {
      const float cx = x0 + float(px) * dx;
      const float cy = y0 + float(py) * dy;
      float zx = 0.0f;
      float zy = 0.0f;
      std::int32_t n = 0;
      while (zx * zx + zy * zy <= 4.0f &&
             n < std::int32_t(params.maxIterations)) {
        const float t = zx * zx - zy * zy + cx;
        zy = 2.0f * zx * zy + cy;
        zx = t;
        ++n;
      }
      result.iterations[std::size_t(py) * params.width + px] = n;
    }
  }
  result.wallSeconds = wall.elapsedSeconds();
  result.virtualSeconds = 0; // host reference has no device time
  return result;
}

void writePpm(const std::string& path, const FractalParams& params,
              const std::vector<std::int32_t>& iterations) {
  COMMON_EXPECTS(iterations.size() == params.pixels(),
                 "iteration buffer does not match the image size");
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw common::IoError("cannot open " + path);
  }
  out << "P6\n" << params.width << " " << params.height << "\n255\n";
  const auto maxIter = std::int32_t(params.maxIterations);
  for (const std::int32_t n : iterations) {
    unsigned char rgb[3];
    if (n >= maxIter) {
      rgb[0] = rgb[1] = rgb[2] = 0; // members of the set are black
    } else {
      // Simple smooth-ish coloring by iteration count.
      const double t = double(n) / double(maxIter);
      rgb[0] = static_cast<unsigned char>(9 * (1 - t) * t * t * t * 255);
      rgb[1] = static_cast<unsigned char>(
          15 * (1 - t) * (1 - t) * t * t * 255);
      rgb[2] = static_cast<unsigned char>(
          8.5 * (1 - t) * (1 - t) * (1 - t) * t * 255);
    }
    out.write(reinterpret_cast<const char*>(rgb), 3);
  }
}

std::vector<LocEntry> locEntries() {
  const std::string dir = std::string(SKELCL_REPRO_SOURCE_DIR) +
                          "/src/mandelbrot/";
  return {
      {"CUDA", dir + "kernels/mandelbrot_cuda.cl",
       dir + "mandelbrot_cuda.cpp"},
      {"OpenCL", dir + "kernels/mandelbrot_opencl.cl",
       dir + "mandelbrot_opencl.cpp"},
      {"SkelCL", dir + "kernels/mandelbrot_skelcl.cl",
       dir + "mandelbrot_skelcl.cpp"},
  };
}

} // namespace mandelbrot
