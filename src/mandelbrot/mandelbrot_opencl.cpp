// Plain OpenCL-style Mandelbrot host program (paper Sec. IV-A): carries
// the full boilerplate a real OpenCL application needs — platform and
// device discovery, context and queue setup, runtime program build with
// error-log handling, explicit buffer management and transfers, explicit
// kernel argument binding, and an explicit 16x16 work-group geometry.
#include "mandelbrot/mandelbrot.h"

#include <iostream>

#include "common/stopwatch.h"
#include "mandelbrot_opencl_source.h"
#include "ocl/ocl.h"

namespace mandelbrot {

FractalResult computeOpenCl(const FractalParams& params) {
  common::Stopwatch wall;
  const auto virtualStart = ocl::hostTimeNs();

  // Platform / device discovery.
  const auto platforms = ocl::getPlatforms();
  if (platforms.empty()) {
    throw common::Error("no OpenCL platforms found");
  }
  const auto gpus = platforms.front().devices(ocl::DeviceType::GPU);
  if (gpus.empty()) {
    throw common::Error("no GPU devices found");
  }
  const ocl::Device device = gpus.front();

  // Context and command queue.
  ocl::Context context({device});
  ocl::CommandQueue queue(device, ocl::Backend::OpenCL);

  // Build the program from source at runtime.
  ocl::Program program = context.createProgram(kMandelbrotOpenClSource);
  try {
    program.build();
  } catch (const ocl::BuildError& e) {
    std::cerr << "OpenCL build failed:\n" << e.log() << std::endl;
    throw;
  }
  ocl::Kernel kernel = program.createKernel("mandelbrot");

  // Device buffer for the iteration counts.
  const std::size_t bytes = params.pixels() * sizeof(std::int32_t);
  ocl::Buffer out = context.createBuffer(device, bytes);

  // Bind the kernel arguments one by one.
  kernel.setArg(0, out);
  kernel.setArg(1, std::int32_t(params.width));
  kernel.setArg(2, std::int32_t(params.height));
  kernel.setArg(3, params.x0());
  kernel.setArg(4, params.y0());
  kernel.setArg(5, params.dx());
  kernel.setArg(6, params.dy());
  kernel.setArg(7, std::int32_t(params.maxIterations));

  // Launch with explicit 16x16 work-groups, padding the global size.
  clc::NDRange range;
  range.dims = 2;
  range.localSize[0] = 16;
  range.localSize[1] = 16;
  range.globalSize[0] = (params.width + 15) / 16 * 16;
  range.globalSize[1] = (params.height + 15) / 16 * 16;
  queue.enqueueNDRange(kernel, range);
  queue.finish();

  // Download the result.
  FractalResult result;
  result.iterations.resize(params.pixels());
  queue.enqueueReadBuffer(out, 0, bytes, result.iterations.data(),
                          /*blocking=*/true);

  result.virtualSeconds = double(ocl::hostTimeNs() - virtualStart) * 1e-9;
  result.wallSeconds = wall.elapsedSeconds();
  return result;
}

} // namespace mandelbrot
