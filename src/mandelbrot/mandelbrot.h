// Mandelbrot case study (paper Sec. IV-A).
//
// Three parallel implementations of the same fractal computation — CUDA,
// OpenCL, and SkelCL — mirroring the paper's comparison of programming
// effort (lines of code) and runtime. All three produce bit-identical
// iteration counts; tests enforce that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mandelbrot {

/// The fractal viewport and iteration budget.
struct FractalParams {
  std::uint32_t width = 4096;
  std::uint32_t height = 3072;
  float centerX = -0.75f;
  float centerY = 0.0f;
  float viewWidth = 3.5f; // complex-plane width covered by the image
  std::uint32_t maxIterations = 64;

  /// The paper's evaluation size (4096 x 3072 pixels).
  static FractalParams paperSize() { return FractalParams{}; }

  /// A reduced size suitable for interpreted execution and tests. The
  /// iteration budget is raised so the compute:transfer ratio resembles
  /// the paper's full-size run (where compute dominates); see
  /// EXPERIMENTS.md.
  static FractalParams benchSize() {
    FractalParams p;
    p.width = 384;
    p.height = 288;
    p.maxIterations = 256;
    return p;
  }

  float x0() const { return centerX - viewWidth / 2.0f; }
  float y0() const {
    return centerY - viewWidth * float(height) / float(width) / 2.0f;
  }
  float dx() const { return viewWidth / float(width); }
  float dy() const {
    return viewWidth * float(height) / float(width) / float(height);
  }
  std::size_t pixels() const {
    return std::size_t(width) * std::size_t(height);
  }
};

/// Result of one run: per-pixel iteration counts plus both clocks.
struct FractalResult {
  std::vector<std::int32_t> iterations;
  double virtualSeconds = 0; // simulated device/host time
  double wallSeconds = 0;    // real time spent interpreting
};

/// Host reference implementation (single-threaded C++).
FractalResult computeReference(const FractalParams& params);

/// CUDA-style implementation (cuda:: veneer, one GPU).
FractalResult computeCuda(const FractalParams& params);

/// Plain OpenCL-style implementation (ocl:: host API, one GPU), with all
/// the boilerplate a real OpenCL host program carries.
FractalResult computeOpenCl(const FractalParams& params);

/// SkelCL implementation (Map skeleton over a vector of pixel
/// coordinates). `workGroupSize` 0 = SkelCL default (256). Expects
/// skelcl::init() to have happened.
FractalResult computeSkelCl(const FractalParams& params,
                            std::size_t workGroupSize = 0);

/// Writes a PPM image colored by iteration count (for the example app).
void writePpm(const std::string& path, const FractalParams& params,
              const std::vector<std::int32_t>& iterations);

/// Source files whose LoC reproduce the paper's program-size figure.
struct LocEntry {
  std::string label;
  std::string kernelFile; // counted as "kernel function"
  std::string hostFile;   // counted as "host program"
};
std::vector<LocEntry> locEntries();

} // namespace mandelbrot
