// CUDA-style Mandelbrot host program (paper Sec. IV-A). The kernel is
// compiled ahead of the run (the nvcc model) and launched with the
// paper's 16x16 work-groups ("thread blocks").
#include "mandelbrot/mandelbrot.h"

#include "common/stopwatch.h"
#include "cuda/runtime.h"
#include "mandelbrot_cuda_source.h"

namespace mandelbrot {

FractalResult computeCuda(const FractalParams& params) {
  common::Stopwatch wall;
  const auto virtualStart = cuda::clockNs();

  cuda::setDevice(0);
  static cuda::Module module = cuda::Module::compile(kMandelbrotCudaSource);
  auto kernel = module.function("mandelbrot");

  const std::size_t bytes = params.pixels() * sizeof(std::int32_t);
  cuda::DeviceMemory out(bytes);

  const cuda::Dim3 block(16, 16);
  const cuda::Dim3 grid((params.width + 15) / 16, (params.height + 15) / 16);
  cuda::launch(kernel, grid, block, out, std::int32_t(params.width),
               std::int32_t(params.height), params.x0(), params.y0(),
               params.dx(), params.dy(),
               std::int32_t(params.maxIterations));
  cuda::deviceSynchronize();

  FractalResult result;
  result.iterations.resize(params.pixels());
  cuda::memcpyDeviceToHost(result.iterations.data(), out, bytes);

  result.virtualSeconds = double(cuda::clockNs() - virtualStart) * 1e-9;
  result.wallSeconds = wall.elapsedSeconds();
  return result;
}

} // namespace mandelbrot
