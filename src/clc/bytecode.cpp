#include "clc/bytecode.h"

#include <sstream>

namespace clc {

std::size_t typeTagSize(TypeTag tag) noexcept {
  switch (tag) {
    case TypeTag::I8:
    case TypeTag::U8: return 1;
    case TypeTag::I16:
    case TypeTag::U16: return 2;
    case TypeTag::I32:
    case TypeTag::U32:
    case TypeTag::F32: return 4;
    case TypeTag::I64:
    case TypeTag::U64:
    case TypeTag::F64:
    case TypeTag::Ptr: return 8;
  }
  return 8;
}

const char* typeTagName(TypeTag tag) noexcept {
  switch (tag) {
    case TypeTag::I8: return "i8";
    case TypeTag::U8: return "u8";
    case TypeTag::I16: return "i16";
    case TypeTag::U16: return "u16";
    case TypeTag::I32: return "i32";
    case TypeTag::U32: return "u32";
    case TypeTag::I64: return "i64";
    case TypeTag::U64: return "u64";
    case TypeTag::F32: return "f32";
    case TypeTag::F64: return "f64";
    case TypeTag::Ptr: return "ptr";
  }
  return "?";
}

const char* opName(Op op) noexcept {
  switch (op) {
    case Op::Nop: return "nop";
    case Op::PushConst: return "push_const";
    case Op::PushFrameAddr: return "push_frame_addr";
    case Op::PushLocalAddr: return "push_local_addr";
    case Op::Dup: return "dup";
    case Op::Pop: return "pop";
    case Op::Swap: return "swap";
    case Op::Rot3: return "rot3";
    case Op::Load: return "load";
    case Op::Store: return "store";
    case Op::StoreKeep: return "store_keep";
    case Op::MemCopy: return "memcopy";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Div: return "div";
    case Op::Rem: return "rem";
    case Op::Neg: return "neg";
    case Op::Shl: return "shl";
    case Op::Shr: return "shr";
    case Op::BitAnd: return "and";
    case Op::BitOr: return "or";
    case Op::BitXor: return "xor";
    case Op::BitNot: return "not";
    case Op::CmpEq: return "cmp_eq";
    case Op::CmpNe: return "cmp_ne";
    case Op::CmpLt: return "cmp_lt";
    case Op::CmpLe: return "cmp_le";
    case Op::CmpGt: return "cmp_gt";
    case Op::CmpGe: return "cmp_ge";
    case Op::LogNot: return "log_not";
    case Op::Conv: return "conv";
    case Op::Jmp: return "jmp";
    case Op::Jz: return "jz";
    case Op::Jnz: return "jnz";
    case Op::Call: return "call";
    case Op::CallBuiltin: return "call_builtin";
    case Op::Barrier: return "barrier";
    case Op::Ret: return "ret";
    case Op::RetVal: return "ret_val";
    case Op::RetStruct: return "ret_struct";
    case Op::Trap: return "trap";
    case Op::LoadFrame: return "load_frame";
    case Op::StoreFrame: return "store_frame";
    case Op::BinConst: return "bin_const";
    case Op::FrameBin: return "frame_bin";
    case Op::LoadBin: return "load_bin";
    case Op::CmpJz: return "cmp_jz";
    case Op::CmpJnz: return "cmp_jnz";
    case Op::MulAdd: return "mul_add";
    case Op::FrameBin2: return "frame_bin2";
  }
  return "?";
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  for (const FunctionInfo& f : program.functions) {
    out << (f.isKernel ? "kernel " : "func ") << f.name << " frame="
        << f.frameSize << ":\n";
    for (std::uint32_t pc = f.codeStart; pc < f.codeEnd; ++pc) {
      const Instr& instr = program.code[pc];
      out << "  " << pc << ": " << opName(instr.op) << "."
          << typeTagName(instr.tag);
      switch (instr.op) {
        case Op::PushConst:
          out << " #" << instr.a << " ("
              << program.constants[std::size_t(instr.a)] << ")";
          break;
        case Op::Call:
          out << " " << program.functions[std::size_t(instr.a)].name;
          break;
        case Op::BinConst:
          out << " " << opName(embeddedOp(instr.a)) << " #"
              << embeddedOperand(instr.a) << " ("
              << program.constants[std::size_t(embeddedOperand(instr.a))]
              << ")";
          break;
        case Op::FrameBin:
          out << " " << opName(embeddedOp(instr.a)) << " @"
              << embeddedOperand(instr.a);
          break;
        case Op::LoadBin:
          out << " " << opName(Op(instr.a));
          break;
        case Op::FrameBin2:
          out << " " << opName(frame2Op(instr.a)) << " @" << frame2X(instr.a)
              << " @" << frame2Y(instr.a);
          break;
        case Op::CmpJz:
        case Op::CmpJnz:
          out << " " << opName(cmpFromJump(instr.a)) << " -> "
              << cmpJumpTarget(instr.a);
          break;
        default:
          if (instr.a != 0) {
            out << " " << instr.a;
          }
          break;
      }
      out << "\n";
    }
  }
  return out.str();
}

} // namespace clc
