// Token definitions for the clc OpenCL-C front end.
#pragma once

#include <cstdint>
#include <string>

#include "clc/diag.h"

namespace clc {

enum class TokKind : std::uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,

  // Keywords: types.
  KwVoid, KwBool, KwChar, KwUChar, KwShort, KwUShort, KwInt, KwUInt,
  KwLong, KwULong, KwFloat, KwDouble, KwUnsigned, KwSigned, KwSizeT,

  // Keywords: declarations and qualifiers.
  KwStruct, KwTypedef, KwConst, KwVolatile, KwStatic, KwInline,
  KwKernel,      // __kernel / kernel
  KwGlobal,      // __global / global
  KwLocal,       // __local / local / __shared__ (CUDA dialect)
  KwPrivate,     // __private / private
  KwConstantAS,  // __constant / constant
  KwDevice,      // __device__ (CUDA dialect, ignored qualifier)

  // Keywords: statements.
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwSwitch, KwCase, KwDefault, KwGoto,

  // Keywords: expressions.
  KwSizeof, KwTrue, KwFalse,

  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma, Dot, Arrow, Question, Colon,
  Plus, Minus, Star, Slash, Percent,
  PlusPlus, MinusMinus,
  Eq, PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
  AmpEq, PipeEq, CaretEq, ShlEq, ShrEq,
  EqEq, NotEq, Less, Greater, LessEq, GreaterEq,
  AmpAmp, PipePipe, Not,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
  Hash, // only survives lexing inside preprocessor handling
};

const char* tokKindName(TokKind kind) noexcept;

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;        // lexeme (identifier spelling, literal text)
  std::uint64_t intValue = 0;
  double floatValue = 0.0;
  bool unsignedSuffix = false; // integer literal had a 'u' suffix
  bool longSuffix = false;     // integer literal had an 'l' suffix
  bool floatSuffix = false;    // floating literal had an 'f' suffix
  SourceLoc loc;
  bool atLineStart = false;    // first token on its line (for directives)

  bool is(TokKind k) const noexcept { return kind == k; }
};

} // namespace clc
