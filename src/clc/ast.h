// Abstract syntax tree for the clc OpenCL-C subset.
//
// Nodes are arena-owned by the TranslationUnit. The parser builds the tree
// untyped; semantic analysis (sema.h) fills in the `type`, `isLValue`, and
// resolution fields in place, so the same tree flows through all stages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clc/token.h"
#include "clc/types.h"

namespace clc {

struct Expr;
struct Stmt;
struct FuncDecl;
struct VarDecl;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit,
  FloatLit,
  BoolLit,
  VarRef,
  Unary,
  Binary,
  Assign,
  Ternary,
  Call,
  Index,
  Member,
  Cast,
  SizeofType,
};

enum class UnaryOp : std::uint8_t {
  Plus, Neg, Not, BitNot,
  PreInc, PreDec, PostInc, PostDec,
  Deref, AddrOf,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, BitAnd, BitOr, BitXor,
  Lt, Gt, Le, Ge, EqCmp, Ne,
  LogAnd, LogOr,
};

/// Assignment operators; `None` is plain '='.
enum class AssignOp : std::uint8_t {
  None, Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor,
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // Filled in by sema:
  const Type* type = nullptr;
  bool isLValue = false;
  /// For expressions that denote addressable storage (lvalues and struct
  /// rvalues): which memory space the storage lives in.
  AddressSpace storageSpace = AddressSpace::Private;

  // IntLit / BoolLit
  std::uint64_t intValue = 0;
  // FloatLit
  double floatValue = 0.0;
  bool floatIsDouble = false; // literal had no 'f' suffix

  // VarRef
  std::string name;
  const VarDecl* resolvedVar = nullptr; // sema

  // Unary / Binary / Assign / Ternary / Cast / Index / Member
  UnaryOp unaryOp = UnaryOp::Plus;
  BinaryOp binaryOp = BinaryOp::Add;
  AssignOp assignOp = AssignOp::None;
  Expr* lhs = nullptr; // also: operand, base, condition
  Expr* rhs = nullptr; // also: index
  Expr* ternaryElse = nullptr;

  // Call
  std::vector<Expr*> args;
  const FuncDecl* resolvedFunc = nullptr; // sema; null for builtins
  int builtinId = -1;                     // sema; >= 0 for builtins

  // Member
  std::string memberName;
  const StructField* resolvedField = nullptr; // sema

  // Cast / SizeofType: target type written in source.
  const Type* writtenType = nullptr; // resolved at parse time
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block,
  Decl,
  ExprStmt,
  If,
  For,
  While,
  DoWhile,
  Return,
  Break,
  Continue,
  Empty,
};

struct VarDecl {
  std::string name;
  const Type* type = nullptr;
  AddressSpace space = AddressSpace::Private; // Local for __local arrays
  Expr* init = nullptr;                       // may be null
  SourceLoc loc;

  // Filled in by sema/codegen: byte offset of the variable's storage.
  // Private variables live in the work-item frame; __local variables in
  // the work-group's local memory.
  std::uint32_t frameOffset = 0;
  bool isParam = false;
  std::uint32_t paramIndex = 0;
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  std::vector<Stmt*> body;     // Block
  std::vector<VarDecl*> decls; // Decl
  Expr* expr = nullptr;        // ExprStmt, Return (may be null), If/While cond
  Stmt* thenStmt = nullptr;    // If / For / While / DoWhile body
  Stmt* elseStmt = nullptr;    // If
  Stmt* forInit = nullptr;     // For (Decl or ExprStmt or Empty)
  Expr* forStep = nullptr;     // For (may be null)
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct ParamDecl {
  std::string name;
  const Type* type = nullptr;
  SourceLoc loc;
};

struct FuncDecl {
  std::string name;
  const Type* returnType = nullptr;
  std::vector<ParamDecl> params;
  Stmt* bodyStmt = nullptr;
  bool isKernel = false;
  SourceLoc loc;

  // Filled in by sema: declarations for parameters (share frame layout
  // machinery with local variables).
  std::vector<VarDecl*> paramVars;
};

/// A parsed translation unit. Owns the arena behind all node pointers.
class TranslationUnit {
public:
  TranslationUnit() : types_(std::make_unique<TypeTable>()) {}

  TypeTable& types() noexcept { return *types_; }
  const TypeTable& types() const noexcept { return *types_; }

  Expr* newExpr(ExprKind kind, SourceLoc loc) {
    exprs_.push_back(std::make_unique<Expr>());
    exprs_.back()->kind = kind;
    exprs_.back()->loc = loc;
    return exprs_.back().get();
  }

  Stmt* newStmt(StmtKind kind, SourceLoc loc) {
    stmts_.push_back(std::make_unique<Stmt>());
    stmts_.back()->kind = kind;
    stmts_.back()->loc = loc;
    return stmts_.back().get();
  }

  VarDecl* newVarDecl() {
    vars_.push_back(std::make_unique<VarDecl>());
    return vars_.back().get();
  }

  FuncDecl* newFuncDecl() {
    funcs_.push_back(std::make_unique<FuncDecl>());
    return funcs_.back().get();
  }

  /// Functions in declaration order; kernels are the entry points.
  std::vector<FuncDecl*> functions;

  const FuncDecl* findFunction(const std::string& name) const noexcept {
    for (const FuncDecl* f : functions) {
      if (f->name == name) {
        return f;
      }
    }
    return nullptr;
  }

private:
  std::unique_ptr<TypeTable> types_;
  std::vector<std::unique_ptr<Expr>> exprs_;
  std::vector<std::unique_ptr<Stmt>> stmts_;
  std::vector<std::unique_ptr<VarDecl>> vars_;
  std::vector<std::unique_ptr<FuncDecl>> funcs_;
};

} // namespace clc
