#include "clc/types.h"

#include <algorithm>

namespace clc {

const char* addressSpaceName(AddressSpace space) noexcept {
  switch (space) {
    case AddressSpace::Private: return "__private";
    case AddressSpace::Global: return "__global";
    case AddressSpace::Local: return "__local";
    case AddressSpace::Constant: return "__constant";
  }
  return "?";
}

bool isInteger(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::Bool:
    case ScalarKind::I8:
    case ScalarKind::U8:
    case ScalarKind::I16:
    case ScalarKind::U16:
    case ScalarKind::I32:
    case ScalarKind::U32:
    case ScalarKind::I64:
    case ScalarKind::U64:
      return true;
    default:
      return false;
  }
}

bool isSigned(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::I8:
    case ScalarKind::I16:
    case ScalarKind::I32:
    case ScalarKind::I64:
      return true;
    default:
      return false;
  }
}

bool isFloating(ScalarKind kind) noexcept {
  return kind == ScalarKind::F32 || kind == ScalarKind::F64;
}

std::size_t scalarSize(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::Void: return 0;
    case ScalarKind::Bool: return 1;
    case ScalarKind::I8:
    case ScalarKind::U8: return 1;
    case ScalarKind::I16:
    case ScalarKind::U16: return 2;
    case ScalarKind::I32:
    case ScalarKind::U32:
    case ScalarKind::F32: return 4;
    case ScalarKind::I64:
    case ScalarKind::U64:
    case ScalarKind::F64: return 8;
  }
  return 0;
}

const char* scalarName(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::Void: return "void";
    case ScalarKind::Bool: return "bool";
    case ScalarKind::I8: return "char";
    case ScalarKind::U8: return "uchar";
    case ScalarKind::I16: return "short";
    case ScalarKind::U16: return "ushort";
    case ScalarKind::I32: return "int";
    case ScalarKind::U32: return "uint";
    case ScalarKind::I64: return "long";
    case ScalarKind::U64: return "ulong";
    case ScalarKind::F32: return "float";
    case ScalarKind::F64: return "double";
  }
  return "?";
}

const StructField* Type::findField(const std::string& name) const noexcept {
  COMMON_CHECK(isStruct());
  for (const auto& field : fields_) {
    if (field.name == name) {
      return &field;
    }
  }
  return nullptr;
}

std::string Type::toString() const {
  switch (kind_) {
    case Kind::Scalar:
      return scalarName(scalar_);
    case Kind::Pointer:
      return std::string(addressSpaceName(addressSpace_)) + " " +
             element_->toString() + "*";
    case Kind::Struct:
      return "struct " + name_;
    case Kind::Array:
      return element_->toString() + "[" + std::to_string(arrayLength_) + "]";
  }
  return "?";
}

TypeTable::TypeTable() {
  for (int i = 0; i <= static_cast<int>(ScalarKind::F64); ++i) {
    Type* t = allocate();
    t->kind_ = Type::Kind::Scalar;
    t->scalar_ = static_cast<ScalarKind>(i);
    t->size_ = scalarSize(t->scalar_);
    t->align_ = std::max<std::size_t>(1, t->size_);
    scalars_[static_cast<std::size_t>(i)] = t;
  }
}

Type* TypeTable::allocate() {
  storage_.push_back(std::unique_ptr<Type>(new Type()));
  return storage_.back().get();
}

const Type* TypeTable::scalar(ScalarKind kind) const noexcept {
  return scalars_[static_cast<std::size_t>(kind)];
}

const Type* TypeTable::pointerTo(const Type* pointee, AddressSpace space) {
  auto& slots = pointerCache_[pointee];
  const auto idx = static_cast<std::size_t>(space);
  if (slots[idx] == nullptr) {
    Type* t = allocate();
    t->kind_ = Type::Kind::Pointer;
    t->element_ = pointee;
    t->addressSpace_ = space;
    t->size_ = 8; // pointers are 64-bit handles in the VM
    t->align_ = 8;
    slots[idx] = t;
  }
  return slots[idx];
}

const Type* TypeTable::arrayOf(const Type* element, std::uint64_t length) {
  for (const auto& [key, type] : arrayCache_) {
    if (key.first == element && key.second == length) {
      return type;
    }
  }
  Type* t = allocate();
  t->kind_ = Type::Kind::Array;
  t->element_ = element;
  t->arrayLength_ = length;
  t->size_ = element->size() * length;
  t->align_ = element->alignment();
  arrayCache_.push_back({{element, length}, t});
  return t;
}

const Type* TypeTable::declareStruct(const std::string& name,
                                     std::vector<StructField> fields) {
  const Type* t = forwardDeclareStruct(name);
  completeStruct(t, std::move(fields));
  return t;
}

const Type* TypeTable::forwardDeclareStruct(const std::string& name) {
  const auto it = structs_.find(name);
  if (it != structs_.end()) {
    if (it->second->isCompleteStruct()) {
      throw common::InvalidArgument("struct '" + name + "' redefined");
    }
    return it->second;
  }
  Type* t = allocate();
  t->kind_ = Type::Kind::Struct;
  t->name_ = name;
  structs_[name] = t;
  structOrder_.push_back(t);
  return t;
}

void TypeTable::completeStruct(const Type* type,
                               std::vector<StructField> fields) {
  COMMON_CHECK(type->isStruct());
  if (type->isCompleteStruct()) {
    throw common::InvalidArgument("struct '" + type->structName() +
                                  "' redefined");
  }
  auto* t = const_cast<Type*>(type);
  std::size_t offset = 0;
  std::size_t align = 1;
  for (auto& field : fields) {
    if (field.type->isStruct() && !field.type->isCompleteStruct()) {
      throw common::InvalidArgument(
          "field '" + field.name + "' has incomplete type '" +
          field.type->toString() + "'");
    }
    const std::size_t fieldAlign = field.type->alignment();
    offset = (offset + fieldAlign - 1) / fieldAlign * fieldAlign;
    field.offset = static_cast<std::uint32_t>(offset);
    offset += field.type->size();
    align = std::max(align, fieldAlign);
  }
  t->fields_ = std::move(fields);
  t->align_ = align;
  t->size_ = (offset + align - 1) / align * align;
  t->structComplete_ = true;
}

void TypeTable::aliasStruct(const std::string& name, const Type* type) {
  COMMON_CHECK(type->isStruct());
  const auto it = structs_.find(name);
  if (it != structs_.end()) {
    if (it->second != type) {
      throw common::InvalidArgument("type name '" + name +
                                    "' is already in use");
    }
    return;
  }
  structs_[name] = type;
  auto* t = const_cast<Type*>(type);
  if (t->name_.rfind("__anon_struct_", 0) == 0) {
    t->name_ = name;
  }
}

const Type* TypeTable::findStruct(const std::string& name) const noexcept {
  const auto it = structs_.find(name);
  return it == structs_.end() ? nullptr : it->second;
}

} // namespace clc
