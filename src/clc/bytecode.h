// Bytecode representation produced by the clc code generator and executed
// by the VM. A compiled Program is what ocl::Program::build() yields and
// what SkelCL's on-disk kernel cache stores (see serialize.h).
//
// Execution model
// ---------------
// Stack machine with 64-bit operand slots. Floats occupy the low bits of a
// slot in their native width. Every instruction that cares about a type
// carries a TypeTag. Pointers are packed 64-bit handles:
//
//   bits 63..62  address space (0 private, 1 global/constant, 2 local)
//   bits 61..48  segment index  (global: kernel-arg buffer table entry)
//   bits 47..0   byte offset within the segment
//
// which lets the VM bounds-check every memory access against the segment's
// real size — out-of-bounds accesses raise a trap instead of corrupting
// memory, one deliberate quality-of-life improvement over real GPUs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace clc {

enum class TypeTag : std::uint8_t {
  I8, U8, I16, U16, I32, U32, I64, U64, F32, F64,
  Ptr, // alias of U64 with pointer semantics; kept for disassembly clarity
};

std::size_t typeTagSize(TypeTag tag) noexcept;
const char* typeTagName(TypeTag tag) noexcept;

enum class Op : std::uint8_t {
  Nop,
  PushConst,   // a = constant pool index; pushes 64-bit slot
  PushFrameAddr, // a = byte offset in current frame; pushes Private pointer
  PushLocalAddr, // a = byte offset in static __local area; pushes Local ptr
  Dup,         // duplicate top slot
  Pop,         // discard top slot
  Swap,        // swap two top slots

  Rot3,        // [a b c] -> [b c a] (brings the third slot to the top)

  Load,        // tag; pops ptr, pushes loaded value
  Store,       // tag; pops value then ptr, stores value
  StoreKeep,   // like Store but pushes the stored value back
  MemCopy,     // a = byte count; pops src ptr then dst ptr

  // Arithmetic (tag-typed). Pops rhs then lhs, pushes result.
  Add, Sub, Mul, Div, Rem,
  Neg,         // unary
  Shl, Shr, BitAnd, BitOr, BitXor,
  BitNot,      // unary

  // Comparisons: pop rhs, lhs; push i32 0/1.
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  LogNot,      // i32: pushes 1 if zero else 0

  Conv,        // a = (from << 8) | to; converts top of stack

  Jmp,         // a = target pc
  Jz,          // a = target pc; pops i32 condition
  Jnz,         // a = target pc; pops i32 condition

  Call,        // a = function index
  CallBuiltin, // a = builtin id, tag = operand TypeTag (F32/F64/ints)
  Barrier,     // work-group barrier; the VM yields the work-item here
  Ret,         // return without value
  RetVal,      // return with scalar value on stack
  RetStruct,   // a = byte count; pops value address; copies to sret pointer

  Trap,        // a = trap code (unreachable, etc.)

  // --- superinstructions (emitted only by the optimizer, opt.h) ------------
  //
  // Each one is semantically identical to the instruction sequence it
  // replaces and, through Program::cycleCosts, is charged exactly the
  // cycles of that sequence — optimization is a host-side speedup, never
  // a timing-model change.
  LoadFrame,   // a = frame byte offset; pushes canon(load) — PFA+Load
  StoreFrame,  // a = frame byte offset; pops value, stores — PFA+...+Store
  BinConst,    // a = (binop << 20) | const index; rhs from the pool
  FrameBin,    // a = (binop << 20) | frame offset; rhs loaded from frame
  LoadBin,     // a = binop; pops ptr, loads rhs, pops lhs — Load+binop
  CmpJz,       // a = (cmpIdx << 28) | target; jump when compare is false
  CmpJnz,      // a = (cmpIdx << 28) | target; jump when compare is true
  MulAdd,      // pops rhs, lhs, acc; pushes acc + lhs*rhs (two-step, no fma)
  FrameBin2,   // a = (binop << 24) | (lhs off << 12) | rhs off; both operands
               // loaded from the frame — LoadFrame+FrameBin
};

constexpr Op kMaxOp = Op::FrameBin2;

/// True for binary arithmetic/bitwise ops embeddable in BinConst/FrameBin.
constexpr bool isBinaryArithOp(Op op) noexcept {
  return (op >= Op::Add && op <= Op::Rem) ||
         (op >= Op::Shl && op <= Op::BitXor);
}

/// True for the six comparison ops.
constexpr bool isCompareOp(Op op) noexcept {
  return op >= Op::CmpEq && op <= Op::CmpGe;
}

// Encoding helpers for the packed superinstruction immediates.
constexpr int kEmbedOpShift = 20; // BinConst/FrameBin: a = (op << 20) | operand
constexpr std::int32_t kEmbedOperandMask = (1 << kEmbedOpShift) - 1;
constexpr int kCmpJumpShift = 28; // CmpJz/CmpJnz: a = (cmpIdx << 28) | target
constexpr std::int32_t kCmpJumpTargetMask = (1 << kCmpJumpShift) - 1;

constexpr std::int32_t encodeEmbedOp(Op op, std::int32_t operand) noexcept {
  return (std::int32_t(op) << kEmbedOpShift) | operand;
}
constexpr Op embeddedOp(std::int32_t a) noexcept {
  return Op(a >> kEmbedOpShift);
}
constexpr std::int32_t embeddedOperand(std::int32_t a) noexcept {
  return a & kEmbedOperandMask;
}
constexpr std::int32_t encodeCmpJump(Op cmp, std::int32_t target) noexcept {
  return ((std::int32_t(cmp) - std::int32_t(Op::CmpEq)) << kCmpJumpShift) |
         target;
}
constexpr Op cmpFromJump(std::int32_t a) noexcept {
  return Op(std::int32_t(Op::CmpEq) + (a >> kCmpJumpShift));
}
constexpr std::int32_t cmpJumpTarget(std::int32_t a) noexcept {
  return a & kCmpJumpTargetMask;
}

// FrameBin2: a = (binop << 24) | (lhs offset << 12) | rhs offset. Frame
// offsets must fit 12 bits; the optimizer skips the fusion otherwise.
constexpr int kFrame2OpShift = 24;
constexpr int kFrame2XShift = 12;
constexpr std::int32_t kFrame2OffsetMask = (1 << kFrame2XShift) - 1;

constexpr std::int32_t encodeFrame2(Op op, std::int32_t x,
                                    std::int32_t y) noexcept {
  return (std::int32_t(op) << kFrame2OpShift) | (x << kFrame2XShift) | y;
}
constexpr Op frame2Op(std::int32_t a) noexcept {
  return Op(a >> kFrame2OpShift);
}
constexpr std::int32_t frame2X(std::int32_t a) noexcept {
  return (a >> kFrame2XShift) & kFrame2OffsetMask;
}
constexpr std::int32_t frame2Y(std::int32_t a) noexcept {
  return a & kFrame2OffsetMask;
}

const char* opName(Op op) noexcept;

struct Instr {
  Op op = Op::Nop;
  TypeTag tag = TypeTag::I32;
  std::int32_t a = 0;
};
static_assert(sizeof(Instr) == 8);

/// How a kernel argument must be supplied by the host.
enum class ParamKind : std::uint8_t {
  GlobalPtr, // buffer argument
  LocalPtr,  // host supplies a byte size; VM allocates per work-group
  Scalar,    // by-value scalar of `size` bytes
  Struct,    // by-value struct of `size` bytes
};

struct ParamInfo {
  std::string name;
  ParamKind kind = ParamKind::Scalar;
  std::uint32_t size = 0;        // scalar/struct byte size
  TypeTag scalarTag = TypeTag::I32; // valid when kind == Scalar
  /// Frame offset where the parameter's storage lives in the callee frame.
  std::uint32_t frameOffset = 0;
};

struct FunctionInfo {
  std::string name;
  std::uint32_t codeStart = 0;
  std::uint32_t codeEnd = 0;
  std::uint32_t frameSize = 0;
  std::vector<ParamInfo> params;
  bool returnsValue = false;   // scalar return
  bool returnsStruct = false;  // caller passes hidden sret pointer
  std::uint32_t returnSize = 0;
  bool isKernel = false;
};

struct KernelInfo {
  std::string name;
  std::uint32_t functionIndex = 0;
  /// Bytes of statically declared __local variables.
  std::uint32_t staticLocalSize = 0;
};

/// A fully compiled translation unit.
struct Program {
  static constexpr std::uint32_t kSerialVersion = 4;

  std::vector<Instr> code;
  std::vector<std::uint64_t> constants;
  std::vector<FunctionInfo> functions;
  std::vector<KernelInfo> kernels;
  std::string sourceHash; // SHA-256 hex of the source text
  /// Per-instruction cycle cost maintained by the optimizer so that
  /// optimized code is charged exactly the cycles of the unoptimized
  /// sequence it replaces (timing-invariance contract, see opt.h).
  /// Empty = derive each instruction's cost from instrCycleCost().
  std::vector<std::uint32_t> cycleCosts;
  /// Optimization level the code was produced at (0 = raw codegen output).
  std::uint8_t optLevel = 0;

  const KernelInfo* findKernel(const std::string& name) const noexcept {
    for (const auto& k : kernels) {
      if (k.name == name) {
        return &k;
      }
    }
    return nullptr;
  }

  const FunctionInfo* findFunction(const std::string& name) const noexcept {
    for (const auto& f : functions) {
      if (f.name == name) {
        return &f;
      }
    }
    return nullptr;
  }
};

// --- pointer packing --------------------------------------------------------

// Space code 0 is deliberately unused: a zero pointer value (null) then
// decodes to an invalid space and traps instead of aliasing private
// memory at offset 0.
enum class MemSpace : std::uint8_t {
  Invalid = 0,
  Global = 1,
  Local = 2,
  Private = 3,
};

constexpr std::uint64_t packPointer(MemSpace space, std::uint64_t segment,
                                    std::uint64_t offset) noexcept {
  return (std::uint64_t(space) << 62) | ((segment & 0x3fff) << 48) |
         (offset & 0xffffffffffffULL);
}

constexpr MemSpace pointerSpace(std::uint64_t ptr) noexcept {
  return MemSpace((ptr >> 62) & 0x3);
}

constexpr std::uint64_t pointerSegment(std::uint64_t ptr) noexcept {
  return (ptr >> 48) & 0x3fff;
}

constexpr std::uint64_t pointerOffset(std::uint64_t ptr) noexcept {
  return ptr & 0xffffffffffffULL;
}

/// Disassembles the program for debugging and golden tests.
std::string disassemble(const Program& program);

} // namespace clc
