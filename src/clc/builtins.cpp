#include "clc/builtins.h"

#include <unordered_map>

namespace clc {

namespace {

enum class Family {
  WorkItem,     // (uint dim) -> size_t
  WorkDim,      // () -> uint
  Barrier,      // (int flags) -> void
  Math1,        // (genfloat) -> genfloat
  Math2,        // (genfloat, genfloat) -> genfloat
  Math3,        // (genfloat, genfloat, genfloat) -> genfloat
  MinMax,       // (gentype, gentype) -> gentype  (ints and floats)
  IAbs,         // (genint) -> genint
  Clamp,        // (gentype, gentype, gentype) -> gentype
  Mix,          // (genfloat, genfloat, genfloat) -> genfloat
  AsType,       // (32-bit scalar) -> fixed 32-bit scalar
  Convert,      // (scalar) -> fixed scalar
  Atomic1,      // (ptr) -> old
  Atomic2,      // (ptr, operand) -> old
  Atomic3,      // (ptr, cmp, val) -> old
  AtomicF,      // (float ptr, float) -> old
};

struct Entry {
  Builtin id;
  Family family;
};

const std::unordered_map<std::string, Entry>& table() {
  static const std::unordered_map<std::string, Entry> t = {
      {"get_global_id", {Builtin::GetGlobalId, Family::WorkItem}},
      {"get_local_id", {Builtin::GetLocalId, Family::WorkItem}},
      {"get_group_id", {Builtin::GetGroupId, Family::WorkItem}},
      {"get_global_size", {Builtin::GetGlobalSize, Family::WorkItem}},
      {"get_local_size", {Builtin::GetLocalSize, Family::WorkItem}},
      {"get_num_groups", {Builtin::GetNumGroups, Family::WorkItem}},
      {"get_work_dim", {Builtin::GetWorkDim, Family::WorkDim}},
      {"barrier", {Builtin::Barrier, Family::Barrier}},
      {"__syncthreads", {Builtin::Barrier, Family::Barrier}},
      {"mem_fence", {Builtin::Barrier, Family::Barrier}},

      {"sqrt", {Builtin::Sqrt, Family::Math1}},
      {"native_sqrt", {Builtin::Sqrt, Family::Math1}},
      {"rsqrt", {Builtin::Rsqrt, Family::Math1}},
      {"native_rsqrt", {Builtin::Rsqrt, Family::Math1}},
      {"sin", {Builtin::Sin, Family::Math1}},
      {"native_sin", {Builtin::Sin, Family::Math1}},
      {"cos", {Builtin::Cos, Family::Math1}},
      {"native_cos", {Builtin::Cos, Family::Math1}},
      {"tan", {Builtin::Tan, Family::Math1}},
      {"asin", {Builtin::Asin, Family::Math1}},
      {"acos", {Builtin::Acos, Family::Math1}},
      {"atan", {Builtin::Atan, Family::Math1}},
      {"exp", {Builtin::Exp, Family::Math1}},
      {"native_exp", {Builtin::Exp, Family::Math1}},
      {"exp2", {Builtin::Exp2, Family::Math1}},
      {"log", {Builtin::Log, Family::Math1}},
      {"native_log", {Builtin::Log, Family::Math1}},
      {"log2", {Builtin::Log2, Family::Math1}},
      {"log10", {Builtin::Log10, Family::Math1}},
      {"fabs", {Builtin::Fabs, Family::Math1}},
      {"fabsf", {Builtin::Fabs, Family::Math1}},
      {"floor", {Builtin::Floor, Family::Math1}},
      {"ceil", {Builtin::Ceil, Family::Math1}},
      {"round", {Builtin::Round, Family::Math1}},
      {"trunc", {Builtin::Trunc, Family::Math1}},

      {"pow", {Builtin::Pow, Family::Math2}},
      {"powf", {Builtin::Pow, Family::Math2}},
      {"atan2", {Builtin::Atan2, Family::Math2}},
      {"fmod", {Builtin::Fmod, Family::Math2}},
      {"fmin", {Builtin::Fmin, Family::Math2}},
      {"fmax", {Builtin::Fmax, Family::Math2}},
      {"hypot", {Builtin::Hypot, Family::Math2}},
      {"copysign", {Builtin::Copysign, Family::Math2}},

      {"mad", {Builtin::Mad, Family::Math3}},
      {"fma", {Builtin::Fma, Family::Math3}},
      {"mix", {Builtin::Mix, Family::Mix}},

      {"min", {Builtin::IMin, Family::MinMax}},
      {"max", {Builtin::IMax, Family::MinMax}},
      {"abs", {Builtin::IAbs, Family::IAbs}},
      {"clamp", {Builtin::IClamp, Family::Clamp}},

      {"as_int", {Builtin::AsInt, Family::AsType}},
      {"as_uint", {Builtin::AsUInt, Family::AsType}},
      {"as_float", {Builtin::AsFloat, Family::AsType}},

      {"convert_int", {Builtin::ConvertInt, Family::Convert}},
      {"convert_uint", {Builtin::ConvertUInt, Family::Convert}},
      {"convert_float", {Builtin::ConvertFloat, Family::Convert}},

      {"atomic_add", {Builtin::AtomicAdd, Family::Atomic2}},
      {"atom_add", {Builtin::AtomicAdd, Family::Atomic2}},
      {"atomicAdd", {Builtin::AtomicAdd, Family::Atomic2}}, // CUDA dialect
      {"atomic_sub", {Builtin::AtomicSub, Family::Atomic2}},
      {"atomic_xchg", {Builtin::AtomicXchg, Family::Atomic2}},
      {"atomic_min", {Builtin::AtomicMin, Family::Atomic2}},
      {"atomic_max", {Builtin::AtomicMax, Family::Atomic2}},
      {"atomic_and", {Builtin::AtomicAnd, Family::Atomic2}},
      {"atomic_or", {Builtin::AtomicOr, Family::Atomic2}},
      {"atomic_xor", {Builtin::AtomicXor, Family::Atomic2}},
      {"atomic_inc", {Builtin::AtomicInc, Family::Atomic1}},
      {"atomic_dec", {Builtin::AtomicDec, Family::Atomic1}},
      {"atomic_cmpxchg", {Builtin::AtomicCmpXchg, Family::Atomic3}},
      {"atomic_add_float", {Builtin::AtomicAddFloat, Family::AtomicF}},
  };
  return t;
}

[[noreturn]] void mismatch(const std::string& name) {
  throw common::InvalidArgument("no matching overload for builtin '" + name +
                                "'");
}

const Type* promoteToFloat(const Type* t, TypeTable& types) {
  if (t->isFloatingScalar()) {
    return t;
  }
  if (t->isArithmetic()) {
    return types.scalar(ScalarKind::F32);
  }
  return nullptr;
}

} // namespace

std::optional<BuiltinCall> resolveBuiltin(
    const std::string& name, const std::vector<const Type*>& argTypes,
    TypeTable& types) {
  const auto it = table().find(name);
  if (it == table().end()) {
    return std::nullopt;
  }
  const Entry entry = it->second;
  BuiltinCall call;
  call.id = entry.id;

  const auto arity = [&](std::size_t n) {
    if (argTypes.size() != n) {
      mismatch(name);
    }
  };

  switch (entry.family) {
    case Family::WorkItem: {
      arity(1);
      if (!argTypes[0]->isIntegerScalar()) mismatch(name);
      call.paramTypes = {types.scalar(ScalarKind::U32)};
      call.resultType = types.scalar(ScalarKind::U64); // size_t
      return call;
    }
    case Family::WorkDim: {
      arity(0);
      call.resultType = types.scalar(ScalarKind::U32);
      return call;
    }
    case Family::Barrier: {
      if (argTypes.size() > 1) mismatch(name);
      if (argTypes.size() == 1 && !argTypes[0]->isIntegerScalar()) {
        mismatch(name);
      }
      call.paramTypes.assign(argTypes.size(), types.scalar(ScalarKind::I32));
      call.resultType = types.voidType();
      return call;
    }
    case Family::Math1: {
      arity(1);
      const Type* t = promoteToFloat(argTypes[0], types);
      if (t == nullptr) mismatch(name);
      call.paramTypes = {t};
      call.resultType = t;
      return call;
    }
    case Family::Math2:
    case Family::Math3:
    case Family::Mix: {
      const std::size_t n = entry.family == Family::Math2 ? 2 : 3;
      arity(n);
      const Type* t = nullptr;
      for (const Type* arg : argTypes) {
        const Type* f = promoteToFloat(arg, types);
        if (f == nullptr) mismatch(name);
        if (t == nullptr || f->scalarKind() == ScalarKind::F64) {
          t = (t != nullptr && t->scalarKind() == ScalarKind::F64) ? t : f;
        }
      }
      call.paramTypes.assign(n, t);
      call.resultType = t;
      return call;
    }
    case Family::MinMax: {
      arity(2);
      if (!argTypes[0]->isArithmetic() || !argTypes[1]->isArithmetic()) {
        mismatch(name);
      }
      // Floats route to fmin/fmax; integers keep min/max semantics.
      if (argTypes[0]->isFloatingScalar() || argTypes[1]->isFloatingScalar()) {
        const Type* t =
            (argTypes[0]->isFloatingScalar() &&
             argTypes[0]->scalarKind() == ScalarKind::F64) ||
                    (argTypes[1]->isFloatingScalar() &&
                     argTypes[1]->scalarKind() == ScalarKind::F64)
                ? types.scalar(ScalarKind::F64)
                : types.scalar(ScalarKind::F32);
        call.id = entry.id == Builtin::IMin ? Builtin::Fmin : Builtin::Fmax;
        call.paramTypes = {t, t};
        call.resultType = t;
        return call;
      }
      // Integer: unify to the wider/unsigned type.
      const bool isU = !isSigned(argTypes[0]->scalarKind()) ||
                       !isSigned(argTypes[1]->scalarKind());
      const std::size_t size =
          std::max(argTypes[0]->size(), argTypes[1]->size());
      ScalarKind kind;
      if (size <= 4) {
        kind = isU ? ScalarKind::U32 : ScalarKind::I32;
      } else {
        kind = isU ? ScalarKind::U64 : ScalarKind::I64;
      }
      const Type* t = types.scalar(kind);
      call.paramTypes = {t, t};
      call.resultType = t;
      return call;
    }
    case Family::IAbs: {
      arity(1);
      if (argTypes[0]->isFloatingScalar()) {
        call.id = Builtin::Fabs;
        call.paramTypes = {argTypes[0]};
        call.resultType = argTypes[0];
        return call;
      }
      if (!argTypes[0]->isIntegerScalar()) mismatch(name);
      const Type* t = types.scalar(
          argTypes[0]->size() <= 4 ? ScalarKind::I32 : ScalarKind::I64);
      call.paramTypes = {t};
      call.resultType = t;
      return call;
    }
    case Family::Clamp: {
      arity(3);
      bool anyFloat = false;
      bool anyDouble = false;
      for (const Type* arg : argTypes) {
        if (!arg->isArithmetic()) mismatch(name);
        anyFloat |= arg->isFloatingScalar();
        anyDouble |= arg->isFloatingScalar() &&
                     arg->scalarKind() == ScalarKind::F64;
      }
      const Type* t;
      if (anyFloat) {
        call.id = Builtin::Clamp;
        t = types.scalar(anyDouble ? ScalarKind::F64 : ScalarKind::F32);
      } else {
        call.id = Builtin::IClamp;
        t = types.scalar(ScalarKind::I64);
      }
      call.paramTypes.assign(3, t);
      call.resultType = t;
      return call;
    }
    case Family::AsType: {
      arity(1);
      if (!argTypes[0]->isScalar() || argTypes[0]->size() != 4) {
        mismatch(name);
      }
      call.paramTypes = {argTypes[0]};
      switch (entry.id) {
        case Builtin::AsInt: call.resultType = types.scalar(ScalarKind::I32); break;
        case Builtin::AsUInt: call.resultType = types.scalar(ScalarKind::U32); break;
        default: call.resultType = types.scalar(ScalarKind::F32); break;
      }
      return call;
    }
    case Family::Convert: {
      arity(1);
      if (!argTypes[0]->isArithmetic()) mismatch(name);
      call.paramTypes = {argTypes[0]};
      switch (entry.id) {
        case Builtin::ConvertInt: call.resultType = types.scalar(ScalarKind::I32); break;
        case Builtin::ConvertUInt: call.resultType = types.scalar(ScalarKind::U32); break;
        default: call.resultType = types.scalar(ScalarKind::F32); break;
      }
      return call;
    }
    case Family::Atomic1:
    case Family::Atomic2:
    case Family::Atomic3: {
      const std::size_t n = entry.family == Family::Atomic1 ? 1
                            : entry.family == Family::Atomic2 ? 2 : 3;
      arity(n);
      if (!argTypes[0]->isPointer()) mismatch(name);
      const Type* pointee = argTypes[0]->pointee();
      if (!pointee->isIntegerScalar() || pointee->size() != 4) {
        // CUDA's atomicAdd also covers float*; route it to the extension.
        if (entry.id == Builtin::AtomicAdd && pointee->isFloatingScalar() &&
            pointee->size() == 4 && n == 2) {
          call.id = Builtin::AtomicAddFloat;
          call.paramTypes = {argTypes[0], types.scalar(ScalarKind::F32)};
          call.resultType = types.scalar(ScalarKind::F32);
          return call;
        }
        mismatch(name);
      }
      // Any address space is accepted: CUDA-dialect device functions take
      // unqualified pointers whose actual space the VM resolves at run
      // time from the pointer value itself.
      call.paramTypes.push_back(argTypes[0]);
      for (std::size_t i = 1; i < n; ++i) {
        call.paramTypes.push_back(pointee);
      }
      call.resultType = pointee;
      return call;
    }
    case Family::AtomicF: {
      arity(2);
      if (!argTypes[0]->isPointer() ||
          !argTypes[0]->pointee()->isFloatingScalar() ||
          argTypes[0]->pointee()->size() != 4) {
        mismatch(name);
      }
      call.paramTypes = {argTypes[0], types.scalar(ScalarKind::F32)};
      call.resultType = types.scalar(ScalarKind::F32);
      return call;
    }
  }
  mismatch(name);
}

std::uint32_t builtinCycleCost(Builtin b) noexcept {
  switch (b) {
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups:
    case Builtin::GetWorkDim:
      return 2;
    case Builtin::Barrier:
      return 16;
    case Builtin::Sqrt:
    case Builtin::Rsqrt:
      return 8;
    case Builtin::Sin:
    case Builtin::Cos:
    case Builtin::Tan:
    case Builtin::Asin:
    case Builtin::Acos:
    case Builtin::Atan:
    case Builtin::Atan2:
    case Builtin::Exp:
    case Builtin::Exp2:
    case Builtin::Log:
    case Builtin::Log2:
    case Builtin::Log10:
    case Builtin::Pow:
    case Builtin::Hypot:
      return 16;
    case Builtin::Fmod:
      return 8;
    case Builtin::Fabs:
    case Builtin::Floor:
    case Builtin::Ceil:
    case Builtin::Round:
    case Builtin::Trunc:
    case Builtin::Fmin:
    case Builtin::Fmax:
    case Builtin::Copysign:
    case Builtin::IMin:
    case Builtin::IMax:
    case Builtin::IAbs:
      return 1;
    case Builtin::Mad:
    case Builtin::Fma:
    case Builtin::Mix:
    case Builtin::Clamp:
    case Builtin::IClamp:
      return 2;
    case Builtin::AsInt:
    case Builtin::AsUInt:
    case Builtin::AsFloat:
    case Builtin::ConvertInt:
    case Builtin::ConvertUInt:
    case Builtin::ConvertFloat:
      return 1;
    case Builtin::AtomicAdd:
    case Builtin::AtomicSub:
    case Builtin::AtomicXchg:
    case Builtin::AtomicMin:
    case Builtin::AtomicMax:
    case Builtin::AtomicAnd:
    case Builtin::AtomicOr:
    case Builtin::AtomicXor:
    case Builtin::AtomicInc:
    case Builtin::AtomicDec:
    case Builtin::AtomicCmpXchg:
    case Builtin::AtomicAddFloat:
      return 32;
  }
  return 1;
}

std::uint8_t builtinArity(Builtin b) noexcept {
  switch (b) {
    case Builtin::GetWorkDim:
      return 0;
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups:
    case Builtin::Barrier: // flags operand is dropped by codegen
    case Builtin::Sqrt:
    case Builtin::Rsqrt:
    case Builtin::Sin:
    case Builtin::Cos:
    case Builtin::Tan:
    case Builtin::Asin:
    case Builtin::Acos:
    case Builtin::Atan:
    case Builtin::Exp:
    case Builtin::Exp2:
    case Builtin::Log:
    case Builtin::Log2:
    case Builtin::Log10:
    case Builtin::Fabs:
    case Builtin::Floor:
    case Builtin::Ceil:
    case Builtin::Round:
    case Builtin::Trunc:
    case Builtin::IAbs:
    case Builtin::AsInt:
    case Builtin::AsUInt:
    case Builtin::AsFloat:
    case Builtin::ConvertInt:
    case Builtin::ConvertUInt:
    case Builtin::ConvertFloat:
    case Builtin::AtomicInc:
    case Builtin::AtomicDec:
      return 1;
    case Builtin::Pow:
    case Builtin::Atan2:
    case Builtin::Fmod:
    case Builtin::Fmin:
    case Builtin::Fmax:
    case Builtin::Hypot:
    case Builtin::Copysign:
    case Builtin::IMin:
    case Builtin::IMax:
    case Builtin::AtomicAdd:
    case Builtin::AtomicSub:
    case Builtin::AtomicXchg:
    case Builtin::AtomicMin:
    case Builtin::AtomicMax:
    case Builtin::AtomicAnd:
    case Builtin::AtomicOr:
    case Builtin::AtomicXor:
    case Builtin::AtomicAddFloat:
      return 2;
    case Builtin::Mad:
    case Builtin::Fma:
    case Builtin::Clamp:
    case Builtin::IClamp:
    case Builtin::Mix:
    case Builtin::AtomicCmpXchg:
      return 3;
  }
  return 0;
}

const char* builtinName(Builtin b) noexcept {
  switch (b) {
    case Builtin::GetGlobalId: return "get_global_id";
    case Builtin::GetLocalId: return "get_local_id";
    case Builtin::GetGroupId: return "get_group_id";
    case Builtin::GetGlobalSize: return "get_global_size";
    case Builtin::GetLocalSize: return "get_local_size";
    case Builtin::GetNumGroups: return "get_num_groups";
    case Builtin::GetWorkDim: return "get_work_dim";
    case Builtin::Barrier: return "barrier";
    case Builtin::Sqrt: return "sqrt";
    case Builtin::Rsqrt: return "rsqrt";
    case Builtin::Sin: return "sin";
    case Builtin::Cos: return "cos";
    case Builtin::Tan: return "tan";
    case Builtin::Asin: return "asin";
    case Builtin::Acos: return "acos";
    case Builtin::Atan: return "atan";
    case Builtin::Atan2: return "atan2";
    case Builtin::Exp: return "exp";
    case Builtin::Exp2: return "exp2";
    case Builtin::Log: return "log";
    case Builtin::Log2: return "log2";
    case Builtin::Log10: return "log10";
    case Builtin::Fabs: return "fabs";
    case Builtin::Floor: return "floor";
    case Builtin::Ceil: return "ceil";
    case Builtin::Round: return "round";
    case Builtin::Trunc: return "trunc";
    case Builtin::Pow: return "pow";
    case Builtin::Fmod: return "fmod";
    case Builtin::Fmin: return "fmin";
    case Builtin::Fmax: return "fmax";
    case Builtin::Hypot: return "hypot";
    case Builtin::Copysign: return "copysign";
    case Builtin::Mad: return "mad";
    case Builtin::Fma: return "fma";
    case Builtin::Clamp: return "clamp";
    case Builtin::Mix: return "mix";
    case Builtin::IMin: return "min";
    case Builtin::IMax: return "max";
    case Builtin::IAbs: return "abs";
    case Builtin::IClamp: return "clamp";
    case Builtin::AsInt: return "as_int";
    case Builtin::AsUInt: return "as_uint";
    case Builtin::AsFloat: return "as_float";
    case Builtin::ConvertInt: return "convert_int";
    case Builtin::ConvertUInt: return "convert_uint";
    case Builtin::ConvertFloat: return "convert_float";
    case Builtin::AtomicAdd: return "atomic_add";
    case Builtin::AtomicSub: return "atomic_sub";
    case Builtin::AtomicXchg: return "atomic_xchg";
    case Builtin::AtomicMin: return "atomic_min";
    case Builtin::AtomicMax: return "atomic_max";
    case Builtin::AtomicAnd: return "atomic_and";
    case Builtin::AtomicOr: return "atomic_or";
    case Builtin::AtomicXor: return "atomic_xor";
    case Builtin::AtomicInc: return "atomic_inc";
    case Builtin::AtomicDec: return "atomic_dec";
    case Builtin::AtomicCmpXchg: return "atomic_cmpxchg";
    case Builtin::AtomicAddFloat: return "atomic_add_float";
  }
  return "?";
}

} // namespace clc
