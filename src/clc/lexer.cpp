#include "clc/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace clc {

const char* tokKindName(TokKind kind) noexcept {
  switch (kind) {
    case TokKind::Eof: return "end of input";
    case TokKind::Identifier: return "identifier";
    case TokKind::IntLiteral: return "integer literal";
    case TokKind::FloatLiteral: return "floating literal";
    case TokKind::CharLiteral: return "character literal";
    case TokKind::KwVoid: return "'void'";
    case TokKind::KwBool: return "'bool'";
    case TokKind::KwChar: return "'char'";
    case TokKind::KwUChar: return "'uchar'";
    case TokKind::KwShort: return "'short'";
    case TokKind::KwUShort: return "'ushort'";
    case TokKind::KwInt: return "'int'";
    case TokKind::KwUInt: return "'uint'";
    case TokKind::KwLong: return "'long'";
    case TokKind::KwULong: return "'ulong'";
    case TokKind::KwFloat: return "'float'";
    case TokKind::KwDouble: return "'double'";
    case TokKind::KwUnsigned: return "'unsigned'";
    case TokKind::KwSigned: return "'signed'";
    case TokKind::KwSizeT: return "'size_t'";
    case TokKind::KwStruct: return "'struct'";
    case TokKind::KwTypedef: return "'typedef'";
    case TokKind::KwConst: return "'const'";
    case TokKind::KwVolatile: return "'volatile'";
    case TokKind::KwStatic: return "'static'";
    case TokKind::KwInline: return "'inline'";
    case TokKind::KwKernel: return "'__kernel'";
    case TokKind::KwGlobal: return "'__global'";
    case TokKind::KwLocal: return "'__local'";
    case TokKind::KwPrivate: return "'__private'";
    case TokKind::KwConstantAS: return "'__constant'";
    case TokKind::KwDevice: return "'__device__'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwFor: return "'for'";
    case TokKind::KwWhile: return "'while'";
    case TokKind::KwDo: return "'do'";
    case TokKind::KwReturn: return "'return'";
    case TokKind::KwBreak: return "'break'";
    case TokKind::KwContinue: return "'continue'";
    case TokKind::KwSwitch: return "'switch'";
    case TokKind::KwCase: return "'case'";
    case TokKind::KwDefault: return "'default'";
    case TokKind::KwGoto: return "'goto'";
    case TokKind::KwSizeof: return "'sizeof'";
    case TokKind::KwTrue: return "'true'";
    case TokKind::KwFalse: return "'false'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Semicolon: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Dot: return "'.'";
    case TokKind::Arrow: return "'->'";
    case TokKind::Question: return "'?'";
    case TokKind::Colon: return "':'";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Slash: return "'/'";
    case TokKind::Percent: return "'%'";
    case TokKind::PlusPlus: return "'++'";
    case TokKind::MinusMinus: return "'--'";
    case TokKind::Eq: return "'='";
    case TokKind::PlusEq: return "'+='";
    case TokKind::MinusEq: return "'-='";
    case TokKind::StarEq: return "'*='";
    case TokKind::SlashEq: return "'/='";
    case TokKind::PercentEq: return "'%='";
    case TokKind::AmpEq: return "'&='";
    case TokKind::PipeEq: return "'|='";
    case TokKind::CaretEq: return "'^='";
    case TokKind::ShlEq: return "'<<='";
    case TokKind::ShrEq: return "'>>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::NotEq: return "'!='";
    case TokKind::Less: return "'<'";
    case TokKind::Greater: return "'>'";
    case TokKind::LessEq: return "'<='";
    case TokKind::GreaterEq: return "'>='";
    case TokKind::AmpAmp: return "'&&'";
    case TokKind::PipePipe: return "'||'";
    case TokKind::Not: return "'!'";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::Caret: return "'^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
    case TokKind::Hash: return "'#'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokKind>& keywordTable() {
  static const std::unordered_map<std::string, TokKind> table = {
      {"void", TokKind::KwVoid},
      {"bool", TokKind::KwBool},
      {"char", TokKind::KwChar},
      {"uchar", TokKind::KwUChar},
      {"short", TokKind::KwShort},
      {"ushort", TokKind::KwUShort},
      {"int", TokKind::KwInt},
      {"uint", TokKind::KwUInt},
      {"long", TokKind::KwLong},
      {"ulong", TokKind::KwULong},
      {"float", TokKind::KwFloat},
      {"double", TokKind::KwDouble},
      {"unsigned", TokKind::KwUnsigned},
      {"signed", TokKind::KwSigned},
      {"size_t", TokKind::KwSizeT},
      {"struct", TokKind::KwStruct},
      {"typedef", TokKind::KwTypedef},
      {"const", TokKind::KwConst},
      {"volatile", TokKind::KwVolatile},
      {"static", TokKind::KwStatic},
      {"inline", TokKind::KwInline},
      {"__kernel", TokKind::KwKernel},
      {"kernel", TokKind::KwKernel},
      {"__global", TokKind::KwGlobal},
      {"global", TokKind::KwGlobal},
      {"__local", TokKind::KwLocal},
      {"local", TokKind::KwLocal},
      {"__shared__", TokKind::KwLocal}, // CUDA dialect
      {"__private", TokKind::KwPrivate},
      {"__constant", TokKind::KwConstantAS},
      {"constant", TokKind::KwConstantAS},
      {"__device__", TokKind::KwDevice}, // CUDA dialect
      {"__global__", TokKind::KwKernel}, // CUDA dialect
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"for", TokKind::KwFor},
      {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},
      {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
      {"switch", TokKind::KwSwitch},
      {"case", TokKind::KwCase},
      {"default", TokKind::KwDefault},
      {"goto", TokKind::KwGoto},
      {"sizeof", TokKind::KwSizeof},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
  };
  return table;
}

class Lexer {
public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    bool lineStart = true;
    for (;;) {
      skipWhitespaceAndComments(lineStart);
      Token tok = next();
      tok.atLineStart = lineStart;
      lineStart = false;
      const bool eof = tok.kind == TokKind::Eof;
      tokens.push_back(std::move(tok));
      if (eof) {
        return tokens;
      }
    }
  }

private:
  char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  SourceLoc here() const noexcept { return SourceLoc{line_, col_}; }

  [[noreturn]] void fail(const std::string& message) const {
    throw CompileError(message, here());
  }

  void skipWhitespaceAndComments(bool& lineStart) {
    for (;;) {
      const char c = peek();
      if (c == '\n') {
        lineStart = true;
        advance();
      } else if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
                 c == '\f') {
        advance();
      } else if (c == '\\' && peek(1) == '\n') {
        // Line continuation: consume the pair without advancing the
        // *logical* line, so multi-line #define bodies stay on one line.
        pos_ += 2;
        col_ = 1;
      } else if (c == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0') {
          advance();
        }
      } else if (c == '/' && peek(1) == '*') {
        const SourceLoc start = here();
        advance();
        advance();
        for (;;) {
          if (peek() == '\0') {
            throw CompileError("unterminated block comment", start);
          }
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            break;
          }
          advance();
        }
      } else {
        return;
      }
    }
  }

  Token makeTok(TokKind kind, SourceLoc loc, std::string text = {}) {
    Token tok;
    tok.kind = kind;
    tok.loc = loc;
    tok.text = std::move(text);
    return tok;
  }

  Token next() {
    const SourceLoc loc = here();
    const char c = peek();
    if (c == '\0') {
      return makeTok(TokKind::Eof, loc);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifierOrKeyword(loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return number(loc);
    }
    if (c == '\'') {
      return charLiteral(loc);
    }
    return punctuation(loc);
  }

  Token identifierOrKeyword(SourceLoc loc) {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) ||
           peek() == '_') {
      text.push_back(advance());
    }
    const auto& table = keywordTable();
    if (const auto it = table.find(text); it != table.end()) {
      return makeTok(it->second, loc, std::move(text));
    }
    return makeTok(TokKind::Identifier, loc, std::move(text));
  }

  Token number(SourceLoc loc) {
    std::string text;
    bool isFloat = false;
    bool isHex = false;

    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      isHex = true;
      text.push_back(advance());
      text.push_back(advance());
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        text.push_back(advance());
      }
      if (peek() == '.') {
        isFloat = true;
        text.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          text.push_back(advance());
        }
      }
      if (peek() == 'e' || peek() == 'E') {
        const char sign = peek(1);
        if (std::isdigit(static_cast<unsigned char>(sign)) ||
            ((sign == '+' || sign == '-') &&
             std::isdigit(static_cast<unsigned char>(peek(2))))) {
          isFloat = true;
          text.push_back(advance()); // e
          if (peek() == '+' || peek() == '-') {
            text.push_back(advance());
          }
          while (std::isdigit(static_cast<unsigned char>(peek()))) {
            text.push_back(advance());
          }
        }
      }
    }

    Token tok = makeTok(isFloat ? TokKind::FloatLiteral : TokKind::IntLiteral,
                        loc);
    // Suffixes.
    for (;;) {
      const char s = peek();
      if (s == 'f' || s == 'F') {
        if (isHex) fail("'f' suffix on hex literal");
        tok.kind = TokKind::FloatLiteral;
        tok.floatSuffix = true;
        advance();
      } else if ((s == 'u' || s == 'U') && tok.kind == TokKind::IntLiteral) {
        tok.unsignedSuffix = true;
        advance();
      } else if ((s == 'l' || s == 'L') && tok.kind == TokKind::IntLiteral) {
        tok.longSuffix = true;
        advance();
      } else {
        break;
      }
    }
    if (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
      fail("malformed numeric literal");
    }

    if (tok.kind == TokKind::FloatLiteral) {
      tok.floatValue = std::strtod(text.c_str(), nullptr);
    } else {
      tok.intValue = std::strtoull(text.c_str(), nullptr, 0);
    }
    tok.text = std::move(text);
    return tok;
  }

  Token charLiteral(SourceLoc loc) {
    advance(); // opening quote
    char value = 0;
    if (peek() == '\\') {
      advance();
      const char esc = advance();
      switch (esc) {
        case 'n': value = '\n'; break;
        case 't': value = '\t'; break;
        case 'r': value = '\r'; break;
        case '0': value = '\0'; break;
        case '\\': value = '\\'; break;
        case '\'': value = '\''; break;
        default: fail(std::string("unknown escape '\\") + esc + "'");
      }
    } else if (peek() == '\0' || peek() == '\n') {
      fail("unterminated character literal");
    } else {
      value = advance();
    }
    if (peek() != '\'') {
      fail("unterminated character literal");
    }
    advance();
    Token tok = makeTok(TokKind::IntLiteral, loc);
    tok.intValue = static_cast<std::uint64_t>(value);
    tok.text = std::string(1, value);
    return tok;
  }

  Token punctuation(SourceLoc loc) {
    const char c = advance();
    auto two = [&](char second, TokKind twoKind, TokKind oneKind) {
      if (peek() == second) {
        advance();
        return makeTok(twoKind, loc);
      }
      return makeTok(oneKind, loc);
    };
    switch (c) {
      case '(': return makeTok(TokKind::LParen, loc);
      case ')': return makeTok(TokKind::RParen, loc);
      case '{': return makeTok(TokKind::LBrace, loc);
      case '}': return makeTok(TokKind::RBrace, loc);
      case '[': return makeTok(TokKind::LBracket, loc);
      case ']': return makeTok(TokKind::RBracket, loc);
      case ';': return makeTok(TokKind::Semicolon, loc);
      case ',': return makeTok(TokKind::Comma, loc);
      case '.': return makeTok(TokKind::Dot, loc);
      case '?': return makeTok(TokKind::Question, loc);
      case ':': return makeTok(TokKind::Colon, loc);
      case '~': return makeTok(TokKind::Tilde, loc);
      case '#': return makeTok(TokKind::Hash, loc);
      case '+':
        if (peek() == '+') { advance(); return makeTok(TokKind::PlusPlus, loc); }
        return two('=', TokKind::PlusEq, TokKind::Plus);
      case '-':
        if (peek() == '-') { advance(); return makeTok(TokKind::MinusMinus, loc); }
        if (peek() == '>') { advance(); return makeTok(TokKind::Arrow, loc); }
        return two('=', TokKind::MinusEq, TokKind::Minus);
      case '*': return two('=', TokKind::StarEq, TokKind::Star);
      case '/': return two('=', TokKind::SlashEq, TokKind::Slash);
      case '%': return two('=', TokKind::PercentEq, TokKind::Percent);
      case '=': return two('=', TokKind::EqEq, TokKind::Eq);
      case '!': return two('=', TokKind::NotEq, TokKind::Not);
      case '^': return two('=', TokKind::CaretEq, TokKind::Caret);
      case '&':
        if (peek() == '&') { advance(); return makeTok(TokKind::AmpAmp, loc); }
        return two('=', TokKind::AmpEq, TokKind::Amp);
      case '|':
        if (peek() == '|') { advance(); return makeTok(TokKind::PipePipe, loc); }
        return two('=', TokKind::PipeEq, TokKind::Pipe);
      case '<':
        if (peek() == '<') {
          advance();
          return two('=', TokKind::ShlEq, TokKind::Shl);
        }
        return two('=', TokKind::LessEq, TokKind::Less);
      case '>':
        if (peek() == '>') {
          advance();
          return two('=', TokKind::ShrEq, TokKind::Shr);
        }
        return two('=', TokKind::GreaterEq, TokKind::Greater);
      default:
        throw CompileError(std::string("unexpected character '") + c + "'",
                           loc);
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// ---------------------------------------------------------------------------
// Preprocessor
// ---------------------------------------------------------------------------

struct Macro {
  bool functionLike = false;
  std::vector<std::string> params;
  std::vector<Token> body;
};

class Preprocessor {
public:
  explicit Preprocessor(std::vector<Token> tokens)
      : in_(std::move(tokens)),
        // Budget proportional to the input size: any legitimate expansion
        // stays far below it; a self-referential macro hits it quickly
        // instead of looping forever.
        expansionBudget_(4096 + 64 * in_.size()) {}

  std::vector<Token> run() {
    while (!atEnd()) {
      const Token& tok = cur();
      if (tok.kind == TokKind::Hash && tok.atLineStart) {
        directive();
        continue;
      }
      if (!activeBranch()) {
        ++pos_;
        continue;
      }
      if (tok.kind == TokKind::Identifier && macros_.count(tok.text) != 0) {
        expandMacro();
        continue;
      }
      out_.push_back(cur());
      ++pos_;
    }
    out_.push_back(in_.back()); // Eof
    if (!condStack_.empty()) {
      throw CompileError("unterminated #if block", in_.back().loc);
    }
    return std::move(out_);
  }

private:
  bool atEnd() const noexcept { return in_[pos_].kind == TokKind::Eof; }
  const Token& cur() const noexcept { return in_[pos_]; }

  bool activeBranch() const noexcept {
    for (const bool active : condStack_) {
      if (!active) {
        return false;
      }
    }
    return true;
  }

  /// Tokens of the current line starting after the '#'.
  std::vector<Token> directiveLine() {
    std::vector<Token> lineTokens;
    ++pos_; // consume '#'
    const int line = in_[pos_ - 1].loc.line;
    while (!atEnd() && !(cur().atLineStart && cur().loc.line != line)) {
      if (cur().loc.line != line && cur().atLineStart) {
        break;
      }
      if (cur().loc.line != line) {
        break;
      }
      lineTokens.push_back(cur());
      ++pos_;
    }
    return lineTokens;
  }

  void directive() {
    const SourceLoc loc = cur().loc;
    std::vector<Token> line = directiveLine();
    if (line.empty()) {
      return; // Null directive '#'.
    }
    const std::string& name = line[0].text;
    if (name == "pragma") {
      return; // Ignored, like a driver ignoring unknown pragmas.
    }
    if (name == "define") {
      if (!activeBranch()) return;
      defineMacro(line, loc);
      return;
    }
    if (name == "undef") {
      if (!activeBranch()) return;
      if (line.size() < 2 || line[1].kind != TokKind::Identifier) {
        throw CompileError("#undef requires an identifier", loc);
      }
      macros_.erase(line[1].text);
      return;
    }
    if (name == "ifdef" || name == "ifndef") {
      if (line.size() < 2 || line[1].kind != TokKind::Identifier) {
        throw CompileError("#" + name + " requires an identifier", loc);
      }
      const bool defined = macros_.count(line[1].text) != 0;
      condStack_.push_back(name == "ifdef" ? defined : !defined);
      return;
    }
    if (name == "else") {
      if (condStack_.empty()) {
        throw CompileError("#else without #ifdef", loc);
      }
      condStack_.back() = !condStack_.back();
      return;
    }
    if (name == "endif") {
      if (condStack_.empty()) {
        throw CompileError("#endif without #ifdef", loc);
      }
      condStack_.pop_back();
      return;
    }
    throw CompileError("unsupported preprocessor directive '#" + name + "'",
                       loc);
  }

  void defineMacro(const std::vector<Token>& line, SourceLoc loc) {
    if (line.size() < 2 || line[1].kind != TokKind::Identifier) {
      throw CompileError("#define requires an identifier", loc);
    }
    Macro macro;
    std::size_t bodyStart = 2;
    // Function-like only when '(' directly follows the name on same column.
    if (line.size() > 2 && line[2].kind == TokKind::LParen &&
        line[2].loc.column == line[1].loc.column +
                                  static_cast<int>(line[1].text.size())) {
      macro.functionLike = true;
      std::size_t i = 3;
      if (i < line.size() && line[i].kind == TokKind::RParen) {
        ++i;
      } else {
        for (;;) {
          if (i >= line.size() || line[i].kind != TokKind::Identifier) {
            throw CompileError("malformed macro parameter list", loc);
          }
          macro.params.push_back(line[i].text);
          ++i;
          if (i < line.size() && line[i].kind == TokKind::Comma) {
            ++i;
            continue;
          }
          if (i < line.size() && line[i].kind == TokKind::RParen) {
            ++i;
            break;
          }
          throw CompileError("malformed macro parameter list", loc);
        }
      }
      bodyStart = i;
    }
    macro.body.assign(line.begin() + static_cast<std::ptrdiff_t>(bodyStart),
                      line.end());
    macros_[line[1].text] = std::move(macro);
  }

  void expandMacro() {
    if (expansionBudget_ == 0) {
      throw CompileError("macro expansion limit exceeded (recursive macro?)",
                         cur().loc);
    }
    --expansionBudget_;
    const Token nameTok = cur();
    const Macro& macro = macros_.at(nameTok.text);
    ++pos_;

    std::vector<Token> expansion;
    if (!macro.functionLike) {
      expansion = macro.body;
    } else {
      if (atEnd() || cur().kind != TokKind::LParen) {
        // Function-like macro without arguments: emit the name unchanged,
        // matching C preprocessor behaviour.
        out_.push_back(nameTok);
        return;
      }
      ++pos_; // '('
      std::vector<std::vector<Token>> args;
      std::vector<Token> current;
      int parenDepth = 0;
      for (;;) {
        if (atEnd()) {
          throw CompileError("unterminated macro invocation", nameTok.loc);
        }
        const Token& t = cur();
        if (t.kind == TokKind::RParen && parenDepth == 0) {
          ++pos_;
          if (!current.empty() || !args.empty() || !macro.params.empty()) {
            args.push_back(std::move(current));
          }
          break;
        }
        if (t.kind == TokKind::Comma && parenDepth == 0) {
          args.push_back(std::move(current));
          current.clear();
          ++pos_;
          continue;
        }
        if (t.kind == TokKind::LParen) ++parenDepth;
        if (t.kind == TokKind::RParen) --parenDepth;
        current.push_back(t);
        ++pos_;
      }
      if (args.size() != macro.params.size()) {
        throw CompileError("macro '" + nameTok.text + "' expects " +
                               std::to_string(macro.params.size()) +
                               " arguments, got " +
                               std::to_string(args.size()),
                           nameTok.loc);
      }
      for (const Token& bodyTok : macro.body) {
        bool substituted = false;
        if (bodyTok.kind == TokKind::Identifier) {
          for (std::size_t p = 0; p < macro.params.size(); ++p) {
            if (bodyTok.text == macro.params[p]) {
              expansion.insert(expansion.end(), args[p].begin(),
                               args[p].end());
              substituted = true;
              break;
            }
          }
        }
        if (!substituted) {
          expansion.push_back(bodyTok);
        }
      }
    }

    // Re-scan the expansion for nested macros by splicing it in front of
    // the remaining input.
    for (Token& t : expansion) {
      t.loc = nameTok.loc;
      t.atLineStart = false;
    }
    in_.insert(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
               expansion.begin(), expansion.end());
  }

  std::vector<Token> in_;
  std::vector<Token> out_;
  std::size_t pos_ = 0;
  std::size_t expansionBudget_;
  std::unordered_map<std::string, Macro> macros_;
  std::vector<bool> condStack_;
};

} // namespace

std::vector<Token> lex(const std::string& source) {
  return Lexer(source).run();
}

namespace {

/// Predefined macros every OpenCL-C compiler provides. Processed as a
/// prelude token stream ahead of the user's source.
const char* kPrelude = R"(
#define CLK_LOCAL_MEM_FENCE 1
#define CLK_GLOBAL_MEM_FENCE 2
#define M_PI 3.14159265358979323846
#define M_PI_F 3.14159274101257f
#define FLT_MAX 3.402823466e+38f
#define FLT_MIN 1.175494351e-38f
#define FLT_EPSILON 1.192092896e-07f
#define DBL_MAX 1.7976931348623157e+308
#define INT_MAX 2147483647
#define INT_MIN (-2147483647 - 1)
#define UINT_MAX 4294967295u
#define MAXFLOAT FLT_MAX
#define INFINITY (1.0f / 0.0f)
#define NAN (0.0f / 0.0f)
#define __OPENCL_VERSION__ 110
#define CLC_SIMULATOR 1
)";

} // namespace

std::vector<Token> preprocess(std::vector<Token> tokens) {
  COMMON_CHECK(!tokens.empty() && tokens.back().kind == TokKind::Eof);
  std::vector<Token> prelude = Lexer(std::string(kPrelude)).run();
  prelude.pop_back(); // drop the prelude's Eof
  // Directive parsing groups tokens by line number; negate prelude lines so
  // they stay distinct from each other but can never collide with (or show
  // up in diagnostics for) user source lines.
  for (Token& t : prelude) {
    t.loc.line = -t.loc.line;
  }
  prelude.insert(prelude.end(), std::make_move_iterator(tokens.begin()),
                 std::make_move_iterator(tokens.end()));
  return Preprocessor(std::move(prelude)).run();
}

std::vector<Token> lexAndPreprocess(const std::string& source) {
  return preprocess(lex(source));
}

} // namespace clc
