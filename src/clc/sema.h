// Semantic analysis for the clc OpenCL-C subset.
//
// Annotates the AST in place: resolves names, checks and unifies types
// (inserting explicit Cast nodes so that code generation never has to
// reason about implicit conversions), resolves builtin calls — including
// the CUDA-dialect spellings threadIdx.x / blockIdx.x / __syncthreads() —
// and enforces OpenCL rules (kernels return void, no recursion, __local
// declarations only at kernel scope, kernel pointer parameters must name
// an address space).
#pragma once

#include "clc/ast.h"

namespace clc {

/// Analyzes the unit; throws CompileError on the first error.
void analyze(TranslationUnit& unit);

} // namespace clc
