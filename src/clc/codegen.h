// Bytecode generation from the analyzed AST.
#pragma once

#include <memory>
#include <string>

#include "clc/ast.h"
#include "clc/bytecode.h"

namespace clc {

/// Generates a Program from a fully analyzed translation unit.
Program generate(const TranslationUnit& unit);

/// Convenience driver: lex + parse + analyze + generate.
/// `options` currently supports "-D NAME=VALUE"-free builds only and is
/// folded into the source hash, mirroring clBuildProgram options.
Program compile(const std::string& source);

} // namespace clc
