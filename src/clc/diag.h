// Compiler diagnostics for the clc OpenCL-C front end.
//
// Build failures must surface to SkelCL users the way a real OpenCL driver
// reports them: a BuildError carrying a human-readable log that points at
// the offending line of the *generated* kernel source. CompileError is the
// internal carrier; ocl::Program converts it into its build log.
#pragma once

#include <string>

#include "common/error.h"

namespace clc {

/// A location inside a kernel source string (1-based line and column).
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const noexcept { return line > 0; }
};

/// Thrown by the lexer, parser, and semantic analysis on the first error.
class CompileError : public common::Error {
public:
  CompileError(std::string message, SourceLoc loc)
      : common::Error(format(message, loc)),
        message_(std::move(message)),
        loc_(loc) {}

  const std::string& message() const noexcept { return message_; }
  SourceLoc loc() const noexcept { return loc_; }

private:
  static std::string format(const std::string& message, SourceLoc loc);

  std::string message_;
  SourceLoc loc_;
};

/// Renders `loc` with a caret into `source` for build logs, e.g.
///   3:14: error: unknown identifier 'foo'
///     float y = foo * 2.0f;
///                ^
std::string renderContext(const std::string& source, SourceLoc loc,
                          const std::string& message);

} // namespace clc
