// Binary (de)serialization of compiled Programs.
//
// This is the format SkelCL's on-disk kernel cache stores: loading a
// serialized program skips lexing/parsing/sema/codegen entirely, which is
// what makes cached kernels load much faster than building from source —
// the effect the paper reports as "at least five times faster".
#pragma once

#include <cstdint>
#include <vector>

#include "clc/bytecode.h"

namespace clc {

/// Serializes a program. The encoding is versioned; loaders reject
/// mismatched versions (the cache then falls back to a rebuild).
std::vector<std::uint8_t> serializeProgram(const Program& program);

/// Deserializes; throws common::DeserializeError on malformed or
/// version-mismatched input.
Program deserializeProgram(const std::vector<std::uint8_t>& bytes);

} // namespace clc
