// Lexer (with a small preprocessor) for the clc OpenCL-C subset.
//
// The preprocessor supports what generated and hand-written kernels in
// this repository need: object-like and function-like #define, #undef,
// #ifdef/#ifndef/#else/#endif, and #pragma (ignored). Macro expansion is
// applied during token production with a recursion-depth guard.
#pragma once

#include <string>
#include <vector>

#include "clc/token.h"

namespace clc {

/// Tokenizes `source`; throws CompileError on malformed input.
/// The returned stream always ends with a single Eof token.
std::vector<Token> lex(const std::string& source);

/// Runs the preprocessor over a raw token stream: executes directives and
/// expands macros. `lex` + `preprocess` is what the compiler driver uses;
/// they are exposed separately for testing.
std::vector<Token> preprocess(std::vector<Token> tokens);

/// Convenience: lex + preprocess.
std::vector<Token> lexAndPreprocess(const std::string& source);

} // namespace clc
