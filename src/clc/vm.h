// Bytecode VM: executes a compiled kernel over an OpenCL ND-range.
//
// Work-groups are independent and may run in parallel on a host thread
// pool; work-items inside one group run cooperatively on one thread and
// are scheduled round-robin between barriers, which gives real OpenCL
// barrier semantics (all items reach the barrier before any proceeds).
//
// Every instruction is accounted: the per-item cycle counts and global
// memory traffic feed the ocl timing model that converts a launch into
// virtual device time (see ocl/timing_model.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clc/bytecode.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace clc {

/// Raised when a kernel traps: out-of-bounds access, misaligned atomic,
/// division fault, barrier divergence, stack overflow...
class TrapError : public common::Error {
public:
  explicit TrapError(const std::string& what) : common::Error(what) {}
};

/// A region of host memory standing in for one __global allocation.
struct Segment {
  std::uint8_t* base = nullptr;
  std::size_t size = 0;
};

/// One kernel argument as supplied by the host API.
struct KernelArgValue {
  enum class Kind { Buffer, Local, Scalar, Struct };
  Kind kind = Kind::Scalar;
  std::uint32_t segmentIndex = 0;     // Buffer: index into the segment table
  std::uint64_t scalar = 0;           // Scalar: canonical 64-bit slot
  std::vector<std::uint8_t> bytes;    // Struct: by-value contents
  std::uint32_t localSize = 0;        // Local: per-group byte count
};

struct NDRange {
  std::uint32_t dims = 1;
  std::size_t globalSize[3] = {1, 1, 1};
  std::size_t localSize[3] = {1, 1, 1};
  // Global work offset (clEnqueueNDRangeKernel's global_work_offset):
  // added to get_global_id; group ids stay launch-local, matching OpenCL.
  // Lets a host split one logical launch into sub-launches that pipeline
  // against split transfers without touching kernel source.
  std::size_t globalOffset[3] = {0, 0, 0};

  std::size_t totalGlobal() const noexcept {
    return globalSize[0] * globalSize[1] * globalSize[2];
  }
  std::size_t totalLocal() const noexcept {
    return localSize[0] * localSize[1] * localSize[2];
  }
};

/// Cost profile of one executed work-group.
struct GroupCost {
  std::uint64_t sumCycles = 0; // total cycles over all items in the group
  std::uint64_t maxCycles = 0; // slowest single item (critical path)
};

/// Aggregate profile of a kernel launch, consumed by the timing model.
struct LaunchStats {
  std::uint64_t instructions = 0;
  std::uint64_t totalCycles = 0;
  std::uint64_t globalBytesRead = 0;
  std::uint64_t globalBytesWritten = 0;
  std::uint64_t atomicOps = 0;
  std::uint64_t barrierWaits = 0;
  std::vector<GroupCost> groups;
};

/// Executes `kernelName` over `range`.
///
/// * `segments` is the launch's global-memory table; Buffer arguments and
///   every global pointer in flight index into it.
/// * `pool` runs work-groups in parallel when non-null.
///
/// OpenCL 1.1 rules are enforced: the global size must be divisible by the
/// work-group size in every dimension. Throws TrapError on kernel faults
/// and common::InvalidArgument on launch-configuration errors.
LaunchStats executeKernel(const Program& program,
                          const std::string& kernelName, const NDRange& range,
                          const std::vector<KernelArgValue>& args,
                          const std::vector<Segment>& segments,
                          common::ThreadPool* pool);

/// Per-opcode base cost in device cycles (exposed for tests/docs). For
/// superinstructions this is the cost of the canonical sequence they
/// replace, ignoring any embedded op (use instrCycleCost for that).
std::uint32_t opCycleCost(Op op) noexcept;

/// Base cost of one concrete instruction: like opCycleCost, but decodes
/// embedded ops (BinConst/FrameBin/LoadBin/CmpJz/CmpJnz) so a fused
/// instruction costs exactly the sum of the sequence it replaces. This is
/// what the VM charges when Program::cycleCosts is empty, and what the
/// optimizer seeds its cost table from.
std::uint32_t instrCycleCost(const Instr& instr) noexcept;

/// True when the kernel (or any function it transitively calls) contains
/// a barrier. Barrier-free kernels take the VM's straight-line fast path:
/// one reusable interpreter per work-group instead of round-robin fibers.
bool kernelHasBarrier(const Program& program, const KernelInfo& kernel);

} // namespace clc
