// Builtin functions of the clc OpenCL-C subset: work-item queries, math,
// integer, atomic, and reinterpretation builtins. The CUDA dialect names
// (__syncthreads, threadIdx.x, ...) are mapped onto the same ids by sema.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "clc/types.h"

namespace clc {

enum class Builtin : std::int16_t {
  // Work-item functions.
  GetGlobalId,
  GetLocalId,
  GetGroupId,
  GetGlobalSize,
  GetLocalSize,
  GetNumGroups,
  GetWorkDim,
  Barrier,

  // Unary math (float or double, result follows the operand).
  Sqrt, Rsqrt, Sin, Cos, Tan, Asin, Acos, Atan,
  Exp, Exp2, Log, Log2, Log10,
  Fabs, Floor, Ceil, Round, Trunc,

  // Binary math.
  Pow, Atan2, Fmod, Fmin, Fmax, Hypot, Copysign,

  // Ternary math.
  Mad, Fma, Clamp, Mix,

  // Integer functions (signed/unsigned resolved by operand type).
  IMin, IMax, IAbs, IClamp,

  // Reinterpretation.
  AsInt, AsUInt, AsFloat,

  // Conversion helpers (explicit convert_T notation).
  ConvertInt, ConvertUInt, ConvertFloat,

  // 32-bit atomics on __global or __local int/uint pointers.
  AtomicAdd, AtomicSub, AtomicXchg, AtomicMin, AtomicMax,
  AtomicAnd, AtomicOr, AtomicXor, AtomicInc, AtomicDec, AtomicCmpXchg,

  // Extension: float atomic add (implemented by real SkelCL apps through a
  // compare-exchange loop; provided natively here as well for the
  // ablation benchmark).
  AtomicAddFloat,
};

/// Result of resolving a builtin call against argument types.
struct BuiltinCall {
  Builtin id;
  const Type* resultType = nullptr;
  /// Target type each argument must be coerced to (same length as args).
  std::vector<const Type*> paramTypes;
};

/// Resolves `name(argTypes...)` to a builtin. Returns nullopt when `name`
/// is not a builtin; throws CompileError-style message strings via
/// common::InvalidArgument when the name is a builtin but the argument
/// types do not fit (sema converts this to a located diagnostic).
std::optional<BuiltinCall> resolveBuiltin(const std::string& name,
                                          const std::vector<const Type*>& argTypes,
                                          TypeTable& types);

/// True when the builtin id is a barrier (needs VM yield handling).
inline bool isBarrier(Builtin b) noexcept { return b == Builtin::Barrier; }

/// Cycle cost charged by the timing model for one execution.
std::uint32_t builtinCycleCost(Builtin b) noexcept;

/// Number of operand-stack arguments the VM pops for this builtin.
std::uint8_t builtinArity(Builtin b) noexcept;

const char* builtinName(Builtin b) noexcept;

} // namespace clc
