// Scalar evaluation semantics of the clc bytecode, shared between the VM
// (vm.cpp) and the bytecode optimizer (opt.cpp). The optimizer folds
// constants by calling exactly the routines the interpreter executes, so
// an O2 program is bit-identical to O0 by construction.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "clc/bytecode.h"

namespace clc::eval {

// --- slot helpers ------------------------------------------------------------

inline float slotF32(std::uint64_t s) noexcept {
  float f;
  const std::uint32_t b = static_cast<std::uint32_t>(s);
  std::memcpy(&f, &b, 4);
  return f;
}

inline std::uint64_t f32Slot(float f) noexcept {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

inline double slotF64(std::uint64_t s) noexcept {
  double d;
  std::memcpy(&d, &s, 8);
  return d;
}

inline std::uint64_t f64Slot(double d) noexcept {
  std::uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

/// Canonicalizes an integer slot for its tag (sign/zero extension).
inline std::uint64_t canon(std::uint64_t v, TypeTag tag) noexcept {
  switch (tag) {
    case TypeTag::I8: return std::uint64_t(std::int64_t(std::int8_t(v)));
    case TypeTag::U8: return v & 0xffULL;
    case TypeTag::I16: return std::uint64_t(std::int64_t(std::int16_t(v)));
    case TypeTag::U16: return v & 0xffffULL;
    case TypeTag::I32: return std::uint64_t(std::int64_t(std::int32_t(v)));
    case TypeTag::U32: return v & 0xffffffffULL;
    default: return v;
  }
}

inline bool isSignedTag(TypeTag tag) noexcept {
  switch (tag) {
    case TypeTag::I8:
    case TypeTag::I16:
    case TypeTag::I32:
    case TypeTag::I64:
      return true;
    default:
      return false;
  }
}

inline bool isFloatTag(TypeTag tag) noexcept {
  return tag == TypeTag::F32 || tag == TypeTag::F64;
}

inline unsigned tagBits(TypeTag tag) noexcept {
  switch (tag) {
    case TypeTag::I8:
    case TypeTag::U8: return 8;
    case TypeTag::I16:
    case TypeTag::U16: return 16;
    case TypeTag::I32:
    case TypeTag::U32:
    case TypeTag::F32: return 32;
    default: return 64;
  }
}

/// Safe float-to-integer conversion (clamps like hardware instead of UB).
template <typename To, typename From>
std::uint64_t floatToInt(From value) noexcept {
  if (std::isnan(value)) {
    return 0;
  }
  constexpr double lo = double(std::numeric_limits<To>::min());
  constexpr double hi = double(std::numeric_limits<To>::max());
  const double d = double(value);
  if (d <= lo) return std::uint64_t(std::int64_t(std::numeric_limits<To>::min()));
  if (d >= hi) return std::uint64_t(std::int64_t(std::numeric_limits<To>::max()));
  return std::uint64_t(std::int64_t(To(value)));
}

inline std::uint64_t convert(std::uint64_t v, TypeTag from, TypeTag to) {
  if (from == to) {
    return v;
  }
  // Source value as double / i64 / u64 views.
  if (isFloatTag(from)) {
    const double d = from == TypeTag::F32 ? double(slotF32(v)) : slotF64(v);
    switch (to) {
      case TypeTag::F32: return f32Slot(float(d));
      case TypeTag::F64: return f64Slot(d);
      case TypeTag::I8: return floatToInt<std::int8_t>(d);
      case TypeTag::U8: return canon(floatToInt<std::int64_t>(d), to);
      case TypeTag::I16: return floatToInt<std::int16_t>(d);
      case TypeTag::U16: return canon(floatToInt<std::int64_t>(d), to);
      case TypeTag::I32: return floatToInt<std::int32_t>(d);
      case TypeTag::U32: {
        if (std::isnan(d) || d <= 0) return 0;
        if (d >= 4294967295.0) return 0xffffffffULL;
        return std::uint64_t(d);
      }
      case TypeTag::I64: return floatToInt<std::int64_t>(d);
      case TypeTag::U64:
      case TypeTag::Ptr: {
        if (std::isnan(d) || d <= 0) return 0;
        if (d >= 18446744073709551615.0) return ~0ULL;
        return std::uint64_t(d);
      }
    }
    return v;
  }
  // Integer source.
  if (to == TypeTag::F32) {
    return isSignedTag(from) ? f32Slot(float(std::int64_t(v)))
                             : f32Slot(float(v));
  }
  if (to == TypeTag::F64) {
    return isSignedTag(from) ? f64Slot(double(std::int64_t(v)))
                             : f64Slot(double(v));
  }
  return canon(v, to);
}

// --- arithmetic / comparison -------------------------------------------------

enum class EvalStatus {
  Ok,
  DivByZero,   // integer division/remainder by zero (the VM traps)
  BadOp,       // op/tag combination the VM would trap on
};

/// Binary arithmetic with the VM's exact semantics. On EvalStatus::Ok the
/// result is in `out`; otherwise the VM would trap and the optimizer must
/// leave the instruction alone.
inline EvalStatus evalArith(Op op, TypeTag tag, std::uint64_t lhs,
                            std::uint64_t rhs, std::uint64_t& out) noexcept {
  if (tag == TypeTag::F32) {
    const float a = slotF32(lhs);
    const float b = slotF32(rhs);
    switch (op) {
      case Op::Add: out = f32Slot(a + b); return EvalStatus::Ok;
      case Op::Sub: out = f32Slot(a - b); return EvalStatus::Ok;
      case Op::Mul: out = f32Slot(a * b); return EvalStatus::Ok;
      case Op::Div: out = f32Slot(a / b); return EvalStatus::Ok;
      case Op::Rem: out = f32Slot(std::fmod(a, b)); return EvalStatus::Ok;
      default: return EvalStatus::BadOp;
    }
  }
  if (tag == TypeTag::F64) {
    const double a = slotF64(lhs);
    const double b = slotF64(rhs);
    switch (op) {
      case Op::Add: out = f64Slot(a + b); return EvalStatus::Ok;
      case Op::Sub: out = f64Slot(a - b); return EvalStatus::Ok;
      case Op::Mul: out = f64Slot(a * b); return EvalStatus::Ok;
      case Op::Div: out = f64Slot(a / b); return EvalStatus::Ok;
      case Op::Rem: out = f64Slot(std::fmod(a, b)); return EvalStatus::Ok;
      default: return EvalStatus::BadOp;
    }
  }
  const unsigned bits = tagBits(tag);
  switch (op) {
    case Op::Add: out = canon(lhs + rhs, tag); return EvalStatus::Ok;
    case Op::Sub: out = canon(lhs - rhs, tag); return EvalStatus::Ok;
    case Op::Mul: out = canon(lhs * rhs, tag); return EvalStatus::Ok;
    case Op::Div: {
      if (rhs == 0) return EvalStatus::DivByZero;
      if (isSignedTag(tag)) {
        const auto a = std::int64_t(lhs);
        const auto b = std::int64_t(rhs);
        if (b == -1 && a == std::numeric_limits<std::int64_t>::min()) {
          out = canon(std::uint64_t(a), tag); // wraps, avoids host UB
          return EvalStatus::Ok;
        }
        out = canon(std::uint64_t(a / b), tag);
        return EvalStatus::Ok;
      }
      out = canon(lhs / rhs, tag);
      return EvalStatus::Ok;
    }
    case Op::Rem: {
      if (rhs == 0) return EvalStatus::DivByZero;
      if (isSignedTag(tag)) {
        const auto a = std::int64_t(lhs);
        const auto b = std::int64_t(rhs);
        if (b == -1) {
          out = 0;
          return EvalStatus::Ok;
        }
        out = canon(std::uint64_t(a % b), tag);
        return EvalStatus::Ok;
      }
      out = canon(lhs % rhs, tag);
      return EvalStatus::Ok;
    }
    case Op::Shl:
      out = canon(lhs << (rhs & (bits - 1)), tag);
      return EvalStatus::Ok;
    case Op::Shr:
      if (isSignedTag(tag)) {
        out = canon(std::uint64_t(std::int64_t(lhs) >> (rhs & (bits - 1))),
                    tag);
        return EvalStatus::Ok;
      }
      out = canon((lhs & (bits == 64 ? ~0ULL : ((1ULL << bits) - 1))) >>
                      (rhs & (bits - 1)),
                  tag);
      return EvalStatus::Ok;
    case Op::BitAnd: out = canon(lhs & rhs, tag); return EvalStatus::Ok;
    case Op::BitOr: out = canon(lhs | rhs, tag); return EvalStatus::Ok;
    case Op::BitXor: out = canon(lhs ^ rhs, tag); return EvalStatus::Ok;
    default:
      return EvalStatus::BadOp;
  }
}

/// Comparison with the VM's exact semantics.
inline EvalStatus evalCompare(Op op, TypeTag tag, std::uint64_t lhs,
                              std::uint64_t rhs, bool& out) noexcept {
  if (tag == TypeTag::F32 || tag == TypeTag::F64) {
    const double a = tag == TypeTag::F32 ? double(slotF32(lhs)) : slotF64(lhs);
    const double b = tag == TypeTag::F32 ? double(slotF32(rhs)) : slotF64(rhs);
    switch (op) {
      case Op::CmpEq: out = a == b; return EvalStatus::Ok;
      case Op::CmpNe: out = a != b; return EvalStatus::Ok;
      case Op::CmpLt: out = a < b; return EvalStatus::Ok;
      case Op::CmpLe: out = a <= b; return EvalStatus::Ok;
      case Op::CmpGt: out = a > b; return EvalStatus::Ok;
      case Op::CmpGe: out = a >= b; return EvalStatus::Ok;
      default: return EvalStatus::BadOp;
    }
  }
  if (isSignedTag(tag)) {
    const auto a = std::int64_t(lhs);
    const auto b = std::int64_t(rhs);
    switch (op) {
      case Op::CmpEq: out = a == b; return EvalStatus::Ok;
      case Op::CmpNe: out = a != b; return EvalStatus::Ok;
      case Op::CmpLt: out = a < b; return EvalStatus::Ok;
      case Op::CmpLe: out = a <= b; return EvalStatus::Ok;
      case Op::CmpGt: out = a > b; return EvalStatus::Ok;
      case Op::CmpGe: out = a >= b; return EvalStatus::Ok;
      default: return EvalStatus::BadOp;
    }
  }
  switch (op) {
    case Op::CmpEq: out = lhs == rhs; return EvalStatus::Ok;
    case Op::CmpNe: out = lhs != rhs; return EvalStatus::Ok;
    case Op::CmpLt: out = lhs < rhs; return EvalStatus::Ok;
    case Op::CmpLe: out = lhs <= rhs; return EvalStatus::Ok;
    case Op::CmpGt: out = lhs > rhs; return EvalStatus::Ok;
    case Op::CmpGe: out = lhs >= rhs; return EvalStatus::Ok;
    default: return EvalStatus::BadOp;
  }
}

/// Unary negation with the VM's exact semantics.
inline std::uint64_t evalNeg(TypeTag tag, std::uint64_t v) noexcept {
  if (tag == TypeTag::F32) {
    return f32Slot(-slotF32(v));
  }
  if (tag == TypeTag::F64) {
    return f64Slot(-slotF64(v));
  }
  return canon(0 - v, tag);
}

} // namespace clc::eval
