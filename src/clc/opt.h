// Bytecode-to-bytecode optimizer, run once at ocl::Program::build() time.
//
// Pipeline (each pass individually toggleable through OptOptions):
//
//   1. Per-basic-block symbolic stack simulation: constant folding,
//      frame-slot constant propagation, algebraic simplification and
//      strength reduction (x*1, x+0, mul/div/rem by a power of two),
//      and folding of branches on known conditions.
//   2. Dead-code elimination: unreachable code, push/pop pairs, and
//      frame stores whose slots are provably never read again.
//   3. Peephole fusion into superinstructions (LoadFrame, StoreFrame,
//      BinConst, FrameBin, FrameBin2, LoadBin, CmpJz/CmpJnz, MulAdd),
//      iterated to a fixpoint with compaction in between so fusions
//      enable each other. Jump threading (constant pushes flowing into a
//      [PushConst, CmpJz/CmpJnz] head collapse to one Jmp — the `&&`/`||`
//      diamonds) and store->load forwarding (a frame spill whose slot has
//      exactly one reader stays on the operand stack) run in the same
//      fixpoint, since they feed on fusion products.
//
// Timing-invariance contract
// --------------------------
// The optimizer exists to make the *host* interpreter faster; the
// simulated device time of a launch must not change. Every transform
// therefore maintains Program::cycleCosts, a per-instruction cycle table
// seeded from instrCycleCost():
//
//   * a fused superinstruction is charged the summed cost of the exact
//     sequence it replaced;
//   * a deleted instruction transfers its cost onto the next surviving
//     instruction of the same basic block (same execution count); when no
//     such receiver exists the instruction is kept as a costed Nop
//     instead of being deleted;
//   * unreachable code is removed without transfer (it never executed).
//
// Constant folding calls exactly the scalar routines the interpreter
// runs (clc/eval.h), so O2 results are bit-identical to O0. The VM then
// charges cycleCosts[pc] per dispatch: per-item cycle counts — and with
// them LaunchStats::totalCycles and every per-group sum/max — are
// invariant across optimization levels, while wall-clock time drops with
// the dynamic instruction count.
#pragma once

#include <cstdint>

#include "clc/bytecode.h"

namespace clc {

enum class OptLevel : std::uint8_t {
  O0 = 0, // raw codegen output, cycle table left implicit
  O1 = 1, // folding + propagation + algebraic + DCE
  O2 = 2, // O1 + superinstruction fusion + dead frame stores
};

/// Per-pass switches; used directly by tests, derived from OptLevel in
/// normal builds.
struct OptOptions {
  bool constantFolding = true; // fold constants and known branches
  bool algebraic = true;       // identities, strength reduction, cond-norm
  bool deadCode = true;        // unreachable code, push/pop pairs, dead stores
  bool fuse = true;            // superinstruction fusion

  static OptOptions forLevel(OptLevel level) noexcept {
    OptOptions o;
    if (level == OptLevel::O0) {
      o.constantFolding = o.algebraic = o.deadCode = o.fuse = false;
    } else if (level == OptLevel::O1) {
      o.fuse = false;
    }
    return o;
  }
};

/// What the optimizer did (for logging, benchmarks, and tests).
struct OptStats {
  std::uint32_t foldedInstrs = 0;     // constant-folded operations
  std::uint32_t propagatedLoads = 0;  // frame loads replaced by constants
  std::uint32_t simplifiedInstrs = 0; // algebraic identities + strength red.
  std::uint32_t foldedBranches = 0;   // known-condition branches + threading
  std::uint32_t fusedInstrs = 0;      // superinstructions created
  std::uint32_t deadStores = 0;       // frame stores turned into pops
  std::uint32_t forwardedStores = 0;  // spill/reload pairs kept on the stack
  std::uint32_t removedInstrs = 0;    // instructions deleted by compaction
};

/// Optimizes `program` in place at `level` and stamps program.optLevel.
/// O0 leaves the code untouched (and cycleCosts empty). O1/O2 populate
/// cycleCosts per the timing-invariance contract above.
OptStats optimize(Program& program, OptLevel level);

/// Pass-selectable variant for tests. Does not change program.optLevel.
OptStats optimizeWith(Program& program, const OptOptions& opts);

} // namespace clc
