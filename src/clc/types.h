// Type system for the clc OpenCL-C subset.
//
// Types are immutable and interned in a TypeTable owned by the translation
// unit being compiled; Type pointers compare equal iff the types are equal.
// Layout follows C rules (natural alignment, struct padding), so host
// structs declared with the same fields match byte-for-byte — that is what
// lets SkelCL pass C++ structs to kernels by value.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace clc {

enum class AddressSpace : std::uint8_t {
  Private = 0,
  Global = 1,
  Local = 2,
  Constant = 3,
};

const char* addressSpaceName(AddressSpace space) noexcept;

enum class ScalarKind : std::uint8_t {
  Void,
  Bool,
  I8,
  U8,
  I16,
  U16,
  I32,
  U32,
  I64,
  U64,
  F32,
  F64,
};

bool isInteger(ScalarKind kind) noexcept;
bool isSigned(ScalarKind kind) noexcept;
bool isFloating(ScalarKind kind) noexcept;
std::size_t scalarSize(ScalarKind kind) noexcept;
const char* scalarName(ScalarKind kind) noexcept;

class Type;

struct StructField {
  std::string name;
  const Type* type = nullptr;
  std::uint32_t offset = 0;
};

/// An interned type. Exactly one of the kinds below.
class Type {
public:
  enum class Kind : std::uint8_t { Scalar, Pointer, Struct, Array };

  Kind kind() const noexcept { return kind_; }
  bool isScalar() const noexcept { return kind_ == Kind::Scalar; }
  bool isPointer() const noexcept { return kind_ == Kind::Pointer; }
  bool isStruct() const noexcept { return kind_ == Kind::Struct; }
  bool isArray() const noexcept { return kind_ == Kind::Array; }

  bool isVoid() const noexcept {
    return isScalar() && scalar_ == ScalarKind::Void;
  }
  bool isBool() const noexcept {
    return isScalar() && scalar_ == ScalarKind::Bool;
  }
  bool isIntegerScalar() const noexcept {
    return isScalar() && isInteger(scalar_);
  }
  bool isFloatingScalar() const noexcept {
    return isScalar() && isFloating(scalar_);
  }
  bool isArithmetic() const noexcept {
    return isScalar() && scalar_ != ScalarKind::Void;
  }

  ScalarKind scalarKind() const noexcept {
    COMMON_CHECK(isScalar());
    return scalar_;
  }

  const Type* pointee() const noexcept {
    COMMON_CHECK(isPointer());
    return element_;
  }
  AddressSpace addressSpace() const noexcept {
    COMMON_CHECK(isPointer());
    return addressSpace_;
  }

  const Type* elementType() const noexcept {
    COMMON_CHECK(isArray());
    return element_;
  }
  std::uint64_t arrayLength() const noexcept {
    COMMON_CHECK(isArray());
    return arrayLength_;
  }

  const std::string& structName() const noexcept {
    COMMON_CHECK(isStruct());
    return name_;
  }
  /// False between forwardDeclareStruct and completeStruct.
  bool isCompleteStruct() const noexcept {
    COMMON_CHECK(isStruct());
    return structComplete_;
  }
  const std::vector<StructField>& fields() const noexcept {
    COMMON_CHECK(isStruct());
    return fields_;
  }
  const StructField* findField(const std::string& name) const noexcept;

  std::size_t size() const noexcept { return size_; }
  std::size_t alignment() const noexcept { return align_; }

  /// Human-readable spelling for diagnostics, e.g. "__global float*".
  std::string toString() const;

private:
  friend class TypeTable;
  Type() = default;

  Kind kind_ = Kind::Scalar;
  ScalarKind scalar_ = ScalarKind::Void;
  const Type* element_ = nullptr;   // pointee or array element
  AddressSpace addressSpace_ = AddressSpace::Private;
  std::uint64_t arrayLength_ = 0;
  std::string name_;                // struct name
  std::vector<StructField> fields_;
  std::size_t size_ = 0;
  std::size_t align_ = 1;
  bool structComplete_ = false;
};

/// Interning table. Owns every Type it hands out; all returned pointers
/// stay valid for the table's lifetime.
class TypeTable {
public:
  TypeTable();
  TypeTable(const TypeTable&) = delete;
  TypeTable& operator=(const TypeTable&) = delete;

  const Type* scalar(ScalarKind kind) const noexcept;
  const Type* voidType() const noexcept { return scalar(ScalarKind::Void); }
  const Type* boolType() const noexcept { return scalar(ScalarKind::Bool); }
  const Type* intType() const noexcept { return scalar(ScalarKind::I32); }
  const Type* floatType() const noexcept { return scalar(ScalarKind::F32); }

  const Type* pointerTo(const Type* pointee, AddressSpace space);
  const Type* arrayOf(const Type* element, std::uint64_t length);

  /// Declares a new struct type; throws CompileError-compatible
  /// common::InvalidArgument when the name is already taken.
  const Type* declareStruct(const std::string& name,
                            std::vector<StructField> fields);

  /// Two-phase declaration, enabling self-referential structs
  /// ("struct Node { struct Node* next; }"): forward-declare, then
  /// complete with the field list. Forward-declaring an existing
  /// incomplete struct returns it; an existing complete one throws.
  const Type* forwardDeclareStruct(const std::string& name);
  void completeStruct(const Type* type, std::vector<StructField> fields);

  /// Registers an additional name for a struct (typedef). Renames
  /// anonymous structs so diagnostics use the typedef name. Throws when
  /// the name is already taken by a different struct.
  void aliasStruct(const std::string& name, const Type* type);

  /// Looks up a struct by name; nullptr when unknown.
  const Type* findStruct(const std::string& name) const noexcept;

  /// All struct types in declaration order (used by the serializer).
  const std::vector<const Type*>& structsInOrder() const noexcept {
    return structOrder_;
  }

private:
  Type* allocate();

  std::vector<std::unique_ptr<Type>> storage_;
  std::array<const Type*, 12> scalars_{};
  std::unordered_map<const Type*,
                     std::array<const Type*, 4>> pointerCache_;
  std::unordered_map<std::string, const Type*> structs_;
  std::vector<const Type*> structOrder_;
  std::vector<std::pair<std::pair<const Type*, std::uint64_t>, const Type*>>
      arrayCache_;
};

} // namespace clc
