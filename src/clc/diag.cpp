#include "clc/diag.h"

#include <sstream>

#include "common/string_util.h"

namespace clc {

std::string CompileError::format(const std::string& message, SourceLoc loc) {
  std::ostringstream out;
  if (loc.valid()) {
    out << loc.line << ":" << loc.column << ": ";
  }
  out << "error: " << message;
  return out.str();
}

std::string renderContext(const std::string& source, SourceLoc loc,
                          const std::string& message) {
  std::ostringstream out;
  out << (loc.valid() ? std::to_string(loc.line) + ":" +
                            std::to_string(loc.column) + ": "
                      : std::string())
      << "error: " << message << "\n";
  if (!loc.valid()) {
    return out.str();
  }
  // Find the loc.line-th line of the source.
  int line = 1;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= source.size(); ++i) {
    if (i == source.size() || source[i] == '\n') {
      if (line == loc.line) {
        out << source.substr(start, i - start) << "\n";
        for (int c = 1; c < loc.column; ++c) {
          out << ' ';
        }
        out << "^\n";
        break;
      }
      ++line;
      start = i + 1;
    }
  }
  return out.str();
}

} // namespace clc
