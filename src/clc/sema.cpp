#include "clc/sema.h"

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "clc/builtins.h"

namespace clc {

namespace {

/// Integer promotion rank (C11 6.3.1.1, simplified to our scalar set).
int rank(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::Bool: return 0;
    case ScalarKind::I8:
    case ScalarKind::U8: return 1;
    case ScalarKind::I16:
    case ScalarKind::U16: return 2;
    case ScalarKind::I32:
    case ScalarKind::U32: return 3;
    case ScalarKind::I64:
    case ScalarKind::U64: return 4;
    case ScalarKind::F32: return 5;
    case ScalarKind::F64: return 6;
    case ScalarKind::Void: return -1;
  }
  return -1;
}

class Sema {
public:
  explicit Sema(TranslationUnit& unit) : unit_(unit), types_(unit.types()) {}

  void run() {
    for (FuncDecl* func : unit_.functions) {
      if (func->bodyStmt != nullptr) {
        analyzeFunction(func);
      }
    }
    checkNoRecursion();
  }

private:
  // --- scopes ---------------------------------------------------------------

  void pushScope() { scopes_.emplace_back(); }
  void popScope() { scopes_.pop_back(); }

  void declare(VarDecl* var) {
    auto& scope = scopes_.back();
    if (scope.count(var->name) != 0) {
      throw CompileError("redeclaration of '" + var->name + "'", var->loc);
    }
    scope[var->name] = var;
  }

  VarDecl* lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    return nullptr;
  }

  // --- helpers ---------------------------------------------------------------

  [[noreturn]] void fail(const std::string& message, SourceLoc loc) const {
    throw CompileError(message, loc);
  }

  /// Wraps `e` in a cast to `target` unless it already has that type.
  Expr* coerce(Expr* e, const Type* target) {
    COMMON_CHECK(e->type != nullptr);
    if (e->type == target) {
      return e;
    }
    if (e->type->isArithmetic() && target->isArithmetic()) {
      Expr* cast = unit_.newExpr(ExprKind::Cast, e->loc);
      cast->writtenType = target;
      cast->lhs = e;
      cast->type = target;
      return cast;
    }
    if (e->type->isPointer() && target->isPointer()) {
      Expr* cast = unit_.newExpr(ExprKind::Cast, e->loc);
      cast->writtenType = target;
      cast->lhs = e;
      cast->type = target;
      return cast;
    }
    // Integer literal 0 converts to any pointer (null).
    if (target->isPointer() && e->kind == ExprKind::IntLit &&
        e->intValue == 0) {
      Expr* cast = unit_.newExpr(ExprKind::Cast, e->loc);
      cast->writtenType = target;
      cast->lhs = e;
      cast->type = target;
      return cast;
    }
    fail("cannot convert '" + e->type->toString() + "' to '" +
             target->toString() + "'",
         e->loc);
  }

  /// Usual arithmetic conversions; returns the common type.
  const Type* arithCommonType(const Type* a, const Type* b, SourceLoc loc) {
    if (!a->isArithmetic() || !b->isArithmetic()) {
      fail("expected arithmetic operands", loc);
    }
    const ScalarKind ka = a->scalarKind();
    const ScalarKind kb = b->scalarKind();
    if (isFloating(ka) || isFloating(kb)) {
      if (ka == ScalarKind::F64 || kb == ScalarKind::F64) {
        return types_.scalar(ScalarKind::F64);
      }
      return types_.scalar(ScalarKind::F32);
    }
    // Integer promotion to at least int.
    const int ra = std::max(rank(ka), 3);
    const int rb = std::max(rank(kb), 3);
    const int r = std::max(ra, rb);
    const bool ua = !isSigned(ka) && rank(ka) >= 3;
    const bool ub = !isSigned(kb) && rank(kb) >= 3;
    bool resultUnsigned;
    if (ra == rb) {
      resultUnsigned = ua || ub;
    } else if (ra > rb) {
      resultUnsigned = ua;
    } else {
      resultUnsigned = ub;
    }
    if (r <= 3) {
      return types_.scalar(resultUnsigned ? ScalarKind::U32 : ScalarKind::I32);
    }
    return types_.scalar(resultUnsigned ? ScalarKind::U64 : ScalarKind::I64);
  }

  /// Integer promotion of small types to int (for ~, unary -, shifts).
  const Type* promote(const Type* t) {
    if (t->isIntegerScalar() && rank(t->scalarKind()) < 3) {
      return types_.intType();
    }
    return t;
  }

  void requireCondition(const Expr* e) {
    if (!e->type->isArithmetic() && !e->type->isPointer()) {
      fail("condition must be arithmetic or a pointer (got '" +
               e->type->toString() + "')",
           e->loc);
    }
  }

  // --- functions --------------------------------------------------------------

  void analyzeFunction(FuncDecl* func) {
    currentFunc_ = func;
    pushScope();
    std::set<std::string> paramNames;
    for (std::size_t i = 0; i < func->params.size(); ++i) {
      ParamDecl& param = func->params[i];
      if (param.name.empty()) {
        fail("parameter " + std::to_string(i + 1) + " of '" + func->name +
                 "' needs a name",
             param.loc);
      }
      if (!paramNames.insert(param.name).second) {
        fail("duplicate parameter '" + param.name + "'", param.loc);
      }
      if (param.type->isVoid()) {
        fail("parameter cannot have type void", param.loc);
      }
      if (func->isKernel && param.type->isPointer()) {
        const AddressSpace space = param.type->addressSpace();
        if (space == AddressSpace::Private) {
          fail("kernel pointer parameter '" + param.name +
                   "' must be __global, __local or __constant",
               param.loc);
        }
      }
      VarDecl* var = unit_.newVarDecl();
      var->name = param.name;
      var->type = param.type;
      var->isParam = true;
      var->paramIndex = static_cast<std::uint32_t>(i);
      var->loc = param.loc;
      func->paramVars.push_back(var);
      declare(var);
    }
    loopDepth_ = 0;
    analyzeStmt(func->bodyStmt);
    popScope();
    currentFunc_ = nullptr;
  }

  void checkNoRecursion() {
    // OpenCL C forbids recursion; detect cycles in the call graph.
    enum class Mark { White, Grey, Black };
    std::map<const FuncDecl*, Mark> marks;
    std::vector<const FuncDecl*> stack;

    auto dfs = [&](auto&& self, const FuncDecl* f) -> void {
      marks[f] = Mark::Grey;
      const auto range = callGraph_.equal_range(f);
      for (auto it = range.first; it != range.second; ++it) {
        const FuncDecl* callee = it->second;
        const Mark mark = marks.count(callee) ? marks[callee] : Mark::White;
        if (mark == Mark::Grey) {
          throw CompileError("recursion is not allowed in OpenCL C: '" +
                                 f->name + "' -> '" + callee->name + "'",
                             f->loc);
        }
        if (mark == Mark::White) {
          self(self, callee);
        }
      }
      marks[f] = Mark::Black;
    };

    for (const FuncDecl* func : unit_.functions) {
      if (!marks.count(func)) {
        dfs(dfs, func);
      }
    }
  }

  // --- statements --------------------------------------------------------------

  void analyzeStmt(Stmt* stmt) {
    switch (stmt->kind) {
      case StmtKind::Block:
        pushScope();
        for (Stmt* s : stmt->body) {
          analyzeStmt(s);
        }
        popScope();
        return;
      case StmtKind::Decl:
        for (VarDecl* var : stmt->decls) {
          analyzeVarDecl(var);
        }
        return;
      case StmtKind::ExprStmt:
        analyzeExpr(stmt->expr);
        return;
      case StmtKind::If:
        analyzeExpr(stmt->expr);
        requireCondition(stmt->expr);
        analyzeStmt(stmt->thenStmt);
        if (stmt->elseStmt != nullptr) {
          analyzeStmt(stmt->elseStmt);
        }
        return;
      case StmtKind::For:
        pushScope();
        if (stmt->forInit != nullptr) {
          analyzeStmt(stmt->forInit);
        }
        if (stmt->expr != nullptr) {
          analyzeExpr(stmt->expr);
          requireCondition(stmt->expr);
        }
        if (stmt->forStep != nullptr) {
          analyzeExpr(stmt->forStep);
        }
        ++loopDepth_;
        analyzeStmt(stmt->thenStmt);
        --loopDepth_;
        popScope();
        return;
      case StmtKind::While:
      case StmtKind::DoWhile:
        analyzeExpr(stmt->expr);
        requireCondition(stmt->expr);
        ++loopDepth_;
        analyzeStmt(stmt->thenStmt);
        --loopDepth_;
        return;
      case StmtKind::Return: {
        const Type* expected = currentFunc_->returnType;
        if (stmt->expr == nullptr) {
          if (!expected->isVoid()) {
            fail("non-void function '" + currentFunc_->name +
                     "' must return a value",
                 stmt->loc);
          }
          return;
        }
        if (expected->isVoid()) {
          fail("void function '" + currentFunc_->name +
                   "' cannot return a value",
               stmt->loc);
        }
        analyzeExpr(stmt->expr);
        if (expected->isStruct()) {
          if (stmt->expr->type != expected) {
            fail("returning '" + stmt->expr->type->toString() +
                     "' from a function returning '" + expected->toString() +
                     "'",
                 stmt->loc);
          }
        } else {
          stmt->expr = coerce(stmt->expr, expected);
        }
        return;
      }
      case StmtKind::Break:
        if (loopDepth_ == 0) {
          fail("'break' outside of a loop", stmt->loc);
        }
        return;
      case StmtKind::Continue:
        if (loopDepth_ == 0) {
          fail("'continue' outside of a loop", stmt->loc);
        }
        return;
      case StmtKind::Empty:
        return;
    }
  }

  void analyzeVarDecl(VarDecl* var) {
    if (var->type->isVoid()) {
      fail("variable '" + var->name + "' cannot have type void", var->loc);
    }
    if (var->space == AddressSpace::Local) {
      if (!currentFunc_->isKernel) {
        fail("__local variable '" + var->name +
                 "' is only allowed in kernel functions",
             var->loc);
      }
      if (var->init != nullptr) {
        fail("__local variable '" + var->name + "' cannot be initialized",
             var->loc);
      }
    }
    if (var->space == AddressSpace::Global ||
        var->space == AddressSpace::Constant) {
      fail("variables cannot live in the " +
               std::string(addressSpaceName(var->space)) + " address space",
           var->loc);
    }
    if (var->init != nullptr) {
      if (var->type->isArray()) {
        fail("array initializers are not supported", var->loc);
      }
      analyzeExpr(var->init);
      if (var->type->isStruct()) {
        if (var->init->type != var->type) {
          fail("initializing '" + var->type->toString() + "' with '" +
                   var->init->type->toString() + "'",
               var->loc);
        }
      } else {
        var->init = coerce(var->init, var->type);
      }
    }
    declare(var);
  }

  // --- expressions -------------------------------------------------------------

  void analyzeExpr(Expr* e) {
    switch (e->kind) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::BoolLit:
        return; // typed by the parser
      case ExprKind::VarRef: return analyzeVarRef(e);
      case ExprKind::Unary: return analyzeUnary(e);
      case ExprKind::Binary: return analyzeBinary(e);
      case ExprKind::Assign: return analyzeAssign(e);
      case ExprKind::Ternary: return analyzeTernary(e);
      case ExprKind::Call: return analyzeCall(e);
      case ExprKind::Index: return analyzeIndex(e);
      case ExprKind::Member: return analyzeMember(e);
      case ExprKind::Cast: return analyzeCast(e);
      case ExprKind::SizeofType: return analyzeSizeof(e);
    }
  }

  void analyzeVarRef(Expr* e) {
    VarDecl* var = lookup(e->name);
    if (var == nullptr) {
      fail("unknown identifier '" + e->name + "'", e->loc);
    }
    e->resolvedVar = var;
    e->type = var->type;
    e->isLValue = true;
    e->storageSpace = var->space;
  }

  void analyzeUnary(Expr* e) {
    // '&' and '*' need the operand first in all cases.
    analyzeExpr(e->lhs);
    const Type* operand = e->lhs->type;
    switch (e->unaryOp) {
      case UnaryOp::Plus:
      case UnaryOp::Neg: {
        if (!operand->isArithmetic()) {
          fail("unary '" +
                   std::string(e->unaryOp == UnaryOp::Neg ? "-" : "+") +
                   "' needs an arithmetic operand",
               e->loc);
        }
        const Type* t = promote(operand);
        e->lhs = coerce(e->lhs, t);
        e->type = t;
        return;
      }
      case UnaryOp::Not:
        requireCondition(e->lhs);
        e->type = types_.intType();
        return;
      case UnaryOp::BitNot: {
        if (!operand->isIntegerScalar()) {
          fail("'~' needs an integer operand", e->loc);
        }
        const Type* t = promote(operand);
        e->lhs = coerce(e->lhs, t);
        e->type = t;
        return;
      }
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        if (!e->lhs->isLValue) {
          fail("increment/decrement needs an lvalue", e->loc);
        }
        if (!operand->isArithmetic() && !operand->isPointer()) {
          fail("increment/decrement needs arithmetic or pointer type",
               e->loc);
        }
        e->type = operand;
        return;
      case UnaryOp::Deref:
        if (!operand->isPointer()) {
          fail("cannot dereference non-pointer type '" +
                   operand->toString() + "'",
               e->loc);
        }
        e->type = operand->pointee();
        if (e->type->isVoid()) {
          fail("cannot dereference void pointer", e->loc);
        }
        e->isLValue = true;
        e->storageSpace = operand->addressSpace();
        return;
      case UnaryOp::AddrOf:
        if (!e->lhs->isLValue) {
          fail("cannot take the address of an rvalue", e->loc);
        }
        if (e->lhs->type->isArray()) {
          // &array yields a pointer to the first element, like array decay.
          e->type = types_.pointerTo(e->lhs->type->elementType(),
                                     e->lhs->storageSpace);
        } else {
          e->type = types_.pointerTo(e->lhs->type, e->lhs->storageSpace);
        }
        return;
    }
  }

  /// Array-to-pointer decay.
  Expr* decay(Expr* e) {
    if (e->type->isArray()) {
      Expr* cast = unit_.newExpr(ExprKind::Cast, e->loc);
      cast->writtenType =
          types_.pointerTo(e->type->elementType(), e->storageSpace);
      cast->lhs = e;
      cast->type = cast->writtenType;
      return cast;
    }
    return e;
  }

  void analyzeBinary(Expr* e) {
    analyzeExpr(e->lhs);
    analyzeExpr(e->rhs);
    e->lhs = decay(e->lhs);
    e->rhs = decay(e->rhs);
    const Type* lt = e->lhs->type;
    const Type* rt = e->rhs->type;

    switch (e->binaryOp) {
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr:
        requireCondition(e->lhs);
        requireCondition(e->rhs);
        e->type = types_.intType();
        return;
      case BinaryOp::EqCmp:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge: {
        if (lt->isPointer() || rt->isPointer()) {
          if (lt->isPointer() && rt->isPointer()) {
            // Same pointee expected, but comparing any pointers is defined
            // here (handles void* style generic code).
          } else if (lt->isPointer()) {
            e->rhs = coerce(e->rhs, lt);
          } else {
            e->lhs = coerce(e->lhs, rt);
          }
        } else {
          const Type* common = arithCommonType(lt, rt, e->loc);
          e->lhs = coerce(e->lhs, common);
          e->rhs = coerce(e->rhs, common);
        }
        e->type = types_.intType();
        return;
      }
      case BinaryOp::Shl:
      case BinaryOp::Shr: {
        if (!lt->isIntegerScalar() || !rt->isIntegerScalar()) {
          fail("shift needs integer operands", e->loc);
        }
        const Type* t = promote(lt);
        e->lhs = coerce(e->lhs, t);
        e->rhs = coerce(e->rhs, promote(rt));
        e->type = t;
        return;
      }
      case BinaryOp::Add:
      case BinaryOp::Sub: {
        if (lt->isPointer() && rt->isIntegerScalar()) {
          e->rhs = coerce(e->rhs, types_.scalar(ScalarKind::I64));
          e->type = lt;
          return;
        }
        if (e->binaryOp == BinaryOp::Add && lt->isIntegerScalar() &&
            rt->isPointer()) {
          e->lhs = coerce(e->lhs, types_.scalar(ScalarKind::I64));
          e->type = rt;
          return;
        }
        if (e->binaryOp == BinaryOp::Sub && lt->isPointer() &&
            rt->isPointer()) {
          if (lt->pointee() != rt->pointee()) {
            fail("subtracting pointers to different types", e->loc);
          }
          e->type = types_.scalar(ScalarKind::I64);
          return;
        }
        [[fallthrough]];
      }
      case BinaryOp::Mul:
      case BinaryOp::Div: {
        const Type* common = arithCommonType(lt, rt, e->loc);
        e->lhs = coerce(e->lhs, common);
        e->rhs = coerce(e->rhs, common);
        e->type = common;
        return;
      }
      case BinaryOp::Rem:
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor: {
        if (!lt->isIntegerScalar() || !rt->isIntegerScalar()) {
          // OpenCL allows fmod via the builtin; '%' is integer-only.
          fail("operator needs integer operands", e->loc);
        }
        const Type* common = arithCommonType(lt, rt, e->loc);
        e->lhs = coerce(e->lhs, common);
        e->rhs = coerce(e->rhs, common);
        e->type = common;
        return;
      }
    }
  }

  void analyzeAssign(Expr* e) {
    analyzeExpr(e->lhs);
    analyzeExpr(e->rhs);
    if (!e->lhs->isLValue) {
      fail("left side of assignment is not an lvalue", e->loc);
    }
    if (e->lhs->type->isArray()) {
      fail("cannot assign to an array", e->loc);
    }
    const Type* target = e->lhs->type;
    e->rhs = decay(e->rhs);

    if (e->assignOp != AssignOp::None) {
      if (target->isPointer()) {
        if ((e->assignOp != AssignOp::Add && e->assignOp != AssignOp::Sub) ||
            !e->rhs->type->isIntegerScalar()) {
          fail("invalid compound assignment on pointer", e->loc);
        }
        e->rhs = coerce(e->rhs, types_.scalar(ScalarKind::I64));
        e->type = target;
        return;
      }
      if (!target->isArithmetic() || !e->rhs->type->isArithmetic()) {
        fail("compound assignment needs arithmetic operands", e->loc);
      }
      switch (e->assignOp) {
        case AssignOp::Rem:
        case AssignOp::Shl:
        case AssignOp::Shr:
        case AssignOp::And:
        case AssignOp::Or:
        case AssignOp::Xor:
          if (!target->isIntegerScalar() ||
              !e->rhs->type->isIntegerScalar()) {
            fail("compound assignment needs integer operands", e->loc);
          }
          break;
        default:
          break;
      }
      // The operation runs in the common type; result converts back.
      e->rhs = coerce(e->rhs, arithCommonType(target, e->rhs->type, e->loc));
      e->type = target;
      return;
    }

    if (target->isStruct()) {
      if (e->rhs->type != target) {
        fail("assigning '" + e->rhs->type->toString() + "' to '" +
                 target->toString() + "'",
             e->loc);
      }
    } else {
      e->rhs = coerce(e->rhs, target);
    }
    e->type = target;
  }

  void analyzeTernary(Expr* e) {
    analyzeExpr(e->lhs);
    requireCondition(e->lhs);
    analyzeExpr(e->rhs);
    analyzeExpr(e->ternaryElse);
    e->rhs = decay(e->rhs);
    e->ternaryElse = decay(e->ternaryElse);
    const Type* a = e->rhs->type;
    const Type* b = e->ternaryElse->type;
    if (a->isArithmetic() && b->isArithmetic()) {
      const Type* common = arithCommonType(a, b, e->loc);
      e->rhs = coerce(e->rhs, common);
      e->ternaryElse = coerce(e->ternaryElse, common);
      e->type = common;
      return;
    }
    if (a == b && (a->isPointer() || a->isStruct())) {
      e->type = a;
      if (a->isStruct()) {
        fail("ternary on struct values is not supported", e->loc);
      }
      return;
    }
    fail("incompatible ternary branch types '" + a->toString() + "' and '" +
             b->toString() + "'",
         e->loc);
  }

  void analyzeCall(Expr* e) {
    // Analyze arguments first; decay arrays to pointers.
    std::vector<const Type*> argTypes;
    for (Expr*& arg : e->args) {
      analyzeExpr(arg);
      arg = decay(arg);
      argTypes.push_back(arg->type);
    }

    // Builtins take precedence (user code cannot shadow them).
    std::optional<BuiltinCall> builtin;
    try {
      builtin = resolveBuiltin(e->name, argTypes, types_);
    } catch (const common::InvalidArgument& err) {
      fail(err.what(), e->loc);
    }
    if (builtin.has_value()) {
      e->builtinId = static_cast<int>(builtin->id);
      for (std::size_t i = 0; i < e->args.size(); ++i) {
        e->args[i] = coerce(e->args[i], builtin->paramTypes[i]);
      }
      e->type = builtin->resultType;
      if (builtin->id == Builtin::Barrier && !currentFunc_->isKernel) {
        // Real OpenCL allows barriers in helper functions called from
        // kernels; our VM yields only at kernel scope, so reject early
        // with a clear message instead of deadlocking.
        fail("barrier() is only supported directly inside kernel functions",
             e->loc);
      }
      return;
    }

    const FuncDecl* callee = unit_.findFunction(e->name);
    if (callee == nullptr) {
      fail("call to unknown function '" + e->name + "'", e->loc);
    }
    if (callee->bodyStmt == nullptr) {
      fail("function '" + e->name + "' is declared but never defined",
           e->loc);
    }
    if (callee->isKernel) {
      fail("kernel '" + e->name + "' cannot be called from device code",
           e->loc);
    }
    if (callee->params.size() != e->args.size()) {
      fail("'" + e->name + "' expects " +
               std::to_string(callee->params.size()) + " arguments, got " +
               std::to_string(e->args.size()),
           e->loc);
    }
    for (std::size_t i = 0; i < e->args.size(); ++i) {
      const Type* paramType = callee->params[i].type;
      if (paramType->isStruct()) {
        if (e->args[i]->type != paramType) {
          fail("argument " + std::to_string(i + 1) + " of '" + e->name +
                   "': expected '" + paramType->toString() + "', got '" +
                   e->args[i]->type->toString() + "'",
               e->args[i]->loc);
        }
      } else {
        e->args[i] = coerce(e->args[i], paramType);
      }
    }
    e->resolvedFunc = callee;
    e->type = callee->returnType;
    if (e->type->isStruct()) {
      e->storageSpace = AddressSpace::Private; // returned into a temp
    }
    callGraph_.insert({currentFunc_, callee});
  }

  void analyzeIndex(Expr* e) {
    analyzeExpr(e->lhs);
    analyzeExpr(e->rhs);
    if (!e->rhs->type->isIntegerScalar()) {
      fail("array index must be an integer", e->rhs->loc);
    }
    e->rhs = coerce(e->rhs, types_.scalar(ScalarKind::I64));
    const Type* base = e->lhs->type;
    if (base->isArray()) {
      e->type = base->elementType();
      e->isLValue = e->lhs->isLValue;
      e->storageSpace = e->lhs->storageSpace;
      return;
    }
    e->lhs = decay(e->lhs);
    base = e->lhs->type;
    if (!base->isPointer()) {
      fail("cannot index non-pointer type '" + base->toString() + "'",
           e->loc);
    }
    e->type = base->pointee();
    if (e->type->isVoid()) {
      fail("cannot index a void pointer", e->loc);
    }
    e->isLValue = true;
    e->storageSpace = base->addressSpace();
  }

  void analyzeMember(Expr* e) {
    // CUDA dialect: threadIdx.x and friends.
    if (e->lhs->kind == ExprKind::VarRef && lookup(e->lhs->name) == nullptr) {
      static const std::unordered_map<std::string, Builtin> cudaVars = {
          {"threadIdx", Builtin::GetLocalId},
          {"blockIdx", Builtin::GetGroupId},
          {"blockDim", Builtin::GetLocalSize},
          {"gridDim", Builtin::GetNumGroups},
      };
      const auto it = cudaVars.find(e->lhs->name);
      if (it != cudaVars.end()) {
        int dim = -1;
        if (e->memberName == "x") dim = 0;
        else if (e->memberName == "y") dim = 1;
        else if (e->memberName == "z") dim = 2;
        if (dim < 0) {
          fail("unknown component '." + e->memberName + "' on " +
                   e->lhs->name,
               e->loc);
        }
        Expr* dimLit = unit_.newExpr(ExprKind::IntLit, e->loc);
        dimLit->intValue = static_cast<std::uint64_t>(dim);
        dimLit->type = types_.scalar(ScalarKind::U32);
        e->kind = ExprKind::Call;
        e->name = builtinName(it->second);
        e->builtinId = static_cast<int>(it->second);
        e->args = {dimLit};
        e->lhs = nullptr;
        // CUDA's threadIdx.x is uint; ours returns size_t. Keep u64 — the
        // usual conversions absorb the difference.
        e->type = types_.scalar(ScalarKind::U64);
        return;
      }
    }

    analyzeExpr(e->lhs);
    const Type* base = e->lhs->type;
    if (!base->isStruct()) {
      fail("member access on non-struct type '" + base->toString() + "'",
           e->loc);
    }
    const StructField* field = base->findField(e->memberName);
    if (field == nullptr) {
      fail("no field '" + e->memberName + "' in '" + base->toString() + "'",
           e->loc);
    }
    e->resolvedField = field;
    e->type = field->type;
    e->isLValue = e->lhs->isLValue;
    e->storageSpace = e->lhs->storageSpace;
  }

  void analyzeCast(Expr* e) {
    analyzeExpr(e->lhs);
    e->lhs = decay(e->lhs);
    const Type* from = e->lhs->type;
    const Type* to = e->writtenType;
    const bool ok =
        (from->isArithmetic() && to->isArithmetic()) ||
        (from->isPointer() && to->isPointer()) ||
        (from->isPointer() && to->isIntegerScalar() && to->size() == 8) ||
        (from->isIntegerScalar() && to->isPointer()) || (from == to);
    if (!ok) {
      fail("invalid cast from '" + from->toString() + "' to '" +
               to->toString() + "'",
           e->loc);
    }
    e->type = to;
  }

  void analyzeSizeof(Expr* e) {
    if (e->writtenType == nullptr) {
      COMMON_CHECK(e->lhs != nullptr);
      analyzeExpr(e->lhs);
      e->writtenType = e->lhs->type;
    }
    e->type = types_.scalar(ScalarKind::U64);
  }

  TranslationUnit& unit_;
  TypeTable& types_;
  std::vector<std::unordered_map<std::string, VarDecl*>> scopes_;
  FuncDecl* currentFunc_ = nullptr;
  int loopDepth_ = 0;
  std::multimap<const FuncDecl*, const FuncDecl*> callGraph_;
};

} // namespace

void analyze(TranslationUnit& unit) { Sema(unit).run(); }

} // namespace clc
