#include "clc/codegen.h"

#include <cstring>
#include <unordered_map>

#include "clc/builtins.h"
#include "clc/parser.h"
#include "clc/sema.h"
#include "common/hash.h"

namespace clc {

namespace {

TypeTag tagFor(const Type* type) {
  if (type->isPointer()) {
    return TypeTag::Ptr;
  }
  COMMON_CHECK_MSG(type->isScalar(), "tagFor on non-scalar type");
  switch (type->scalarKind()) {
    case ScalarKind::Bool: return TypeTag::U8;
    case ScalarKind::I8: return TypeTag::I8;
    case ScalarKind::U8: return TypeTag::U8;
    case ScalarKind::I16: return TypeTag::I16;
    case ScalarKind::U16: return TypeTag::U16;
    case ScalarKind::I32: return TypeTag::I32;
    case ScalarKind::U32: return TypeTag::U32;
    case ScalarKind::I64: return TypeTag::I64;
    case ScalarKind::U64: return TypeTag::U64;
    case ScalarKind::F32: return TypeTag::F32;
    case ScalarKind::F64: return TypeTag::F64;
    case ScalarKind::Void: break;
  }
  COMMON_CHECK_MSG(false, "tagFor(void)");
  return TypeTag::I32;
}

/// Canonical 64-bit slot representation of an integer literal of a type.
std::uint64_t canonicalInt(std::uint64_t value, TypeTag tag) {
  switch (tag) {
    case TypeTag::I8: return std::uint64_t(std::int64_t(std::int8_t(value)));
    case TypeTag::U8: return value & 0xff;
    case TypeTag::I16: return std::uint64_t(std::int64_t(std::int16_t(value)));
    case TypeTag::U16: return value & 0xffff;
    case TypeTag::I32: return std::uint64_t(std::int64_t(std::int32_t(value)));
    case TypeTag::U32: return value & 0xffffffffULL;
    default: return value;
  }
}

class CodeGen {
public:
  explicit CodeGen(const TranslationUnit& unit) : unit_(unit) {}

  Program run() {
    // Function indices: every function with a body, in declaration order.
    for (const FuncDecl* func : unit_.functions) {
      if (func->bodyStmt == nullptr) {
        continue;
      }
      funcIndex_[func] = static_cast<std::int32_t>(order_.size());
      order_.push_back(func);
    }
    for (const FuncDecl* func : order_) {
      genFunction(func);
    }
    return std::move(program_);
  }

private:
  // --- emission helpers -------------------------------------------------------

  std::int32_t emit(Op op, TypeTag tag = TypeTag::I32, std::int32_t a = 0) {
    program_.code.push_back(Instr{op, tag, a});
    return static_cast<std::int32_t>(program_.code.size() - 1);
  }

  std::int32_t here() const {
    return static_cast<std::int32_t>(program_.code.size());
  }

  void patch(std::int32_t at, std::int32_t target) {
    program_.code[static_cast<std::size_t>(at)].a = target;
  }

  std::int32_t constIndex(std::uint64_t value) {
    const auto it = constCache_.find(value);
    if (it != constCache_.end()) {
      return it->second;
    }
    const auto idx = static_cast<std::int32_t>(program_.constants.size());
    program_.constants.push_back(value);
    constCache_[value] = idx;
    return idx;
  }

  void pushConst(std::uint64_t value, TypeTag tag) {
    emit(Op::PushConst, tag, constIndex(value));
  }

  void pushConstF32(float value) {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    pushConst(bits, TypeTag::F32);
  }

  void pushConstF64(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    pushConst(bits, TypeTag::F64);
  }

  // --- frame layout ------------------------------------------------------------

  std::uint32_t allocFrame(const Type* type) {
    const auto align = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, type->alignment()));
    frameTop_ = (frameTop_ + align - 1) / align * align;
    const std::uint32_t offset = frameTop_;
    frameTop_ += static_cast<std::uint32_t>(std::max<std::size_t>(
        type->size(), 1));
    return offset;
  }

  std::uint32_t allocLocal(const Type* type) {
    const auto align = static_cast<std::uint32_t>(
        std::max<std::size_t>(1, type->alignment()));
    localTop_ = (localTop_ + align - 1) / align * align;
    const std::uint32_t offset = localTop_;
    localTop_ += static_cast<std::uint32_t>(type->size());
    return offset;
  }

  /// Walks a statement tree assigning frame offsets to declarations.
  void layoutStmt(const Stmt* stmt) {
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const Stmt* s : stmt->body) layoutStmt(s);
        return;
      case StmtKind::Decl:
        for (VarDecl* var : stmt->decls) {
          if (var->space == AddressSpace::Local) {
            var->frameOffset = allocLocal(var->type);
          } else {
            var->frameOffset = allocFrame(var->type);
          }
        }
        return;
      case StmtKind::If:
        layoutStmt(stmt->thenStmt);
        if (stmt->elseStmt) layoutStmt(stmt->elseStmt);
        return;
      case StmtKind::For:
        if (stmt->forInit) layoutStmt(stmt->forInit);
        layoutStmt(stmt->thenStmt);
        return;
      case StmtKind::While:
      case StmtKind::DoWhile:
        layoutStmt(stmt->thenStmt);
        return;
      default:
        return;
    }
  }

  // --- function generation ------------------------------------------------------

  void genFunction(const FuncDecl* func) {
    FunctionInfo info;
    info.name = func->name;
    info.isKernel = func->isKernel;
    info.codeStart = static_cast<std::uint32_t>(here());

    frameTop_ = 0;
    localTop_ = 0;

    const bool sret = func->returnType->isStruct();
    if (sret) {
      info.returnsStruct = true;
      info.returnSize = static_cast<std::uint32_t>(func->returnType->size());
      sretOffset_ = allocFrame(unit_.types().scalar(ScalarKind::U64));
    }
    info.returnsValue = !sret && !func->returnType->isVoid();

    for (std::size_t i = 0; i < func->paramVars.size(); ++i) {
      VarDecl* var = func->paramVars[i];
      var->frameOffset = allocFrame(var->type);
      ParamInfo param;
      param.name = var->name;
      param.frameOffset = var->frameOffset;
      param.size = static_cast<std::uint32_t>(var->type->size());
      if (var->type->isPointer()) {
        switch (var->type->addressSpace()) {
          case AddressSpace::Local:
            param.kind = ParamKind::LocalPtr;
            break;
          case AddressSpace::Global:
          case AddressSpace::Constant:
            param.kind = ParamKind::GlobalPtr;
            break;
          case AddressSpace::Private:
            param.kind = ParamKind::Scalar; // device-function-only pointers
            param.scalarTag = TypeTag::Ptr;
            break;
        }
        param.size = 8;
      } else if (var->type->isStruct()) {
        param.kind = ParamKind::Struct;
      } else {
        param.kind = ParamKind::Scalar;
        param.scalarTag = tagFor(var->type);
      }
      info.params.push_back(param);
    }

    layoutStmt(func->bodyStmt);

    currentFunc_ = func;
    genStmt(func->bodyStmt);

    // Implicit return at the end of the body.
    if (func->returnType->isVoid()) {
      emit(Op::Ret);
    } else {
      emit(Op::Trap, TypeTag::I32, 1); // fell off the end of non-void fn
    }

    info.codeEnd = static_cast<std::uint32_t>(here());
    info.frameSize = (frameTop_ + 7) / 8 * 8;
    program_.functions.push_back(info);

    if (func->isKernel) {
      KernelInfo kernel;
      kernel.name = func->name;
      kernel.functionIndex =
          static_cast<std::uint32_t>(funcIndex_.at(func));
      kernel.staticLocalSize = (localTop_ + 7) / 8 * 8;
      program_.kernels.push_back(kernel);
    }
    currentFunc_ = nullptr;
  }

  // --- statements -----------------------------------------------------------------

  struct LoopCtx {
    std::vector<std::int32_t> breakPatches;
    std::vector<std::int32_t> continuePatches;
  };

  void genStmt(const Stmt* stmt) {
    switch (stmt->kind) {
      case StmtKind::Block:
        for (const Stmt* s : stmt->body) genStmt(s);
        return;
      case StmtKind::Decl:
        for (const VarDecl* var : stmt->decls) {
          if (var->init != nullptr) {
            if (var->type->isStruct()) {
              emit(Op::PushFrameAddr, TypeTag::Ptr,
                   static_cast<std::int32_t>(var->frameOffset));
              genValue(var->init); // struct rvalue -> address
              emit(Op::MemCopy, TypeTag::U8,
                   static_cast<std::int32_t>(var->type->size()));
            } else {
              emit(Op::PushFrameAddr, TypeTag::Ptr,
                   static_cast<std::int32_t>(var->frameOffset));
              genValue(var->init);
              emit(Op::Store, tagFor(var->type));
            }
          }
        }
        return;
      case StmtKind::ExprStmt:
        genDiscarded(stmt->expr);
        return;
      case StmtKind::If: {
        genCondition(stmt->expr);
        const std::int32_t jz = emit(Op::Jz);
        genStmt(stmt->thenStmt);
        if (stmt->elseStmt != nullptr) {
          const std::int32_t jend = emit(Op::Jmp);
          patch(jz, here());
          genStmt(stmt->elseStmt);
          patch(jend, here());
        } else {
          patch(jz, here());
        }
        return;
      }
      case StmtKind::While: {
        LoopCtx loop;
        const std::int32_t condAt = here();
        genCondition(stmt->expr);
        const std::int32_t jz = emit(Op::Jz);
        loops_.push_back(&loop);
        genStmt(stmt->thenStmt);
        loops_.pop_back();
        for (const std::int32_t at : loop.continuePatches) {
          patch(at, condAt);
        }
        emit(Op::Jmp, TypeTag::I32, condAt);
        patch(jz, here());
        for (const std::int32_t at : loop.breakPatches) {
          patch(at, here());
        }
        return;
      }
      case StmtKind::DoWhile: {
        LoopCtx loop;
        const std::int32_t bodyAt = here();
        loops_.push_back(&loop);
        genStmt(stmt->thenStmt);
        loops_.pop_back();
        const std::int32_t condAt = here();
        genCondition(stmt->expr);
        emit(Op::Jnz, TypeTag::I32, bodyAt);
        for (const std::int32_t at : loop.continuePatches) {
          patch(at, condAt);
        }
        for (const std::int32_t at : loop.breakPatches) {
          patch(at, here());
        }
        return;
      }
      case StmtKind::For: {
        LoopCtx loop;
        if (stmt->forInit != nullptr) {
          genStmt(stmt->forInit);
        }
        const std::int32_t condAt = here();
        std::int32_t jz = -1;
        if (stmt->expr != nullptr) {
          genCondition(stmt->expr);
          jz = emit(Op::Jz);
        }
        loops_.push_back(&loop);
        genStmt(stmt->thenStmt);
        loops_.pop_back();
        const std::int32_t stepAt = here();
        if (stmt->forStep != nullptr) {
          genDiscarded(stmt->forStep);
        }
        emit(Op::Jmp, TypeTag::I32, condAt);
        if (jz >= 0) {
          patch(jz, here());
        }
        for (const std::int32_t at : loop.continuePatches) {
          patch(at, stepAt);
        }
        for (const std::int32_t at : loop.breakPatches) {
          patch(at, here());
        }
        return;
      }
      case StmtKind::Return:
        if (stmt->expr == nullptr) {
          emit(Op::Ret);
        } else if (currentFunc_->returnType->isStruct()) {
          genValue(stmt->expr); // address of the struct value
          emit(Op::RetStruct, TypeTag::U8,
               static_cast<std::int32_t>(currentFunc_->returnType->size()));
        } else {
          genValue(stmt->expr);
          emit(Op::RetVal, tagFor(currentFunc_->returnType));
        }
        return;
      case StmtKind::Break:
        loops_.back()->breakPatches.push_back(emit(Op::Jmp));
        return;
      case StmtKind::Continue:
        loops_.back()->continuePatches.push_back(emit(Op::Jmp));
        return;
      case StmtKind::Empty:
        return;
    }
  }

  // --- expressions: addresses ------------------------------------------------------

  /// Emits code leaving the address of `e` on the stack. Valid for lvalues
  /// and for struct-typed rvalues (call results evaluate into temps).
  void genAddr(const Expr* e) {
    switch (e->kind) {
      case ExprKind::VarRef: {
        const VarDecl* var = e->resolvedVar;
        if (var->space == AddressSpace::Local) {
          emit(Op::PushLocalAddr, TypeTag::Ptr,
               static_cast<std::int32_t>(var->frameOffset));
        } else {
          emit(Op::PushFrameAddr, TypeTag::Ptr,
               static_cast<std::int32_t>(var->frameOffset));
        }
        return;
      }
      case ExprKind::Unary:
        COMMON_CHECK(e->unaryOp == UnaryOp::Deref);
        genValue(e->lhs); // the pointer value is the address
        return;
      case ExprKind::Index: {
        const Type* base = e->lhs->type;
        std::size_t elemSize;
        if (base->isArray()) {
          genAddr(e->lhs);
          elemSize = base->elementType()->size();
        } else {
          genValue(e->lhs); // pointer value
          elemSize = base->pointee()->size();
        }
        genValue(e->rhs); // i64 index
        pushConst(elemSize, TypeTag::I64);
        emit(Op::Mul, TypeTag::I64);
        emit(Op::Add, TypeTag::U64);
        return;
      }
      case ExprKind::Member: {
        genAddr(e->lhs);
        if (e->resolvedField->offset != 0) {
          pushConst(e->resolvedField->offset, TypeTag::U64);
          emit(Op::Add, TypeTag::U64);
        }
        return;
      }
      case ExprKind::Call:
        // Struct-returning call: evaluating the value yields the address
        // of the temporary that holds the result.
        COMMON_CHECK(e->type->isStruct());
        genValue(e);
        return;
      case ExprKind::Assign: {
        // (a = b).field — generate the assignment, keep the address.
        COMMON_CHECK(e->type->isStruct());
        genStructAssign(e, /*needAddr=*/true);
        return;
      }
      default:
        COMMON_CHECK_MSG(false, "genAddr on non-addressable expression");
    }
  }

  // --- expressions: values -----------------------------------------------------------

  /// Emits code leaving the value of `e` on the stack: a scalar slot, or
  /// the address for struct/array-typed expressions.
  void genValue(const Expr* e) {
    switch (e->kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit: {
        const TypeTag tag = tagFor(e->type);
        pushConst(canonicalInt(e->intValue, tag), tag);
        return;
      }
      case ExprKind::FloatLit:
        if (e->type->scalarKind() == ScalarKind::F64) {
          pushConstF64(e->floatValue);
        } else {
          pushConstF32(static_cast<float>(e->floatValue));
        }
        return;
      case ExprKind::VarRef:
      case ExprKind::Index:
      case ExprKind::Member:
        if (e->type->isStruct() || e->type->isArray()) {
          genAddr(e);
        } else {
          genAddr(e);
          emit(Op::Load, tagFor(e->type));
        }
        return;
      case ExprKind::Unary:
        genUnary(e, /*needValue=*/true);
        return;
      case ExprKind::Binary:
        genBinary(e);
        return;
      case ExprKind::Assign:
        genAssign(e, /*needValue=*/true);
        return;
      case ExprKind::Ternary: {
        genCondition(e->lhs);
        const std::int32_t jz = emit(Op::Jz);
        genValue(e->rhs);
        const std::int32_t jend = emit(Op::Jmp);
        patch(jz, here());
        genValue(e->ternaryElse);
        patch(jend, here());
        return;
      }
      case ExprKind::Call:
        genCall(e, /*needValue=*/true);
        return;
      case ExprKind::Cast:
        genCast(e);
        return;
      case ExprKind::SizeofType:
        pushConst(e->writtenType->size(), TypeTag::U64);
        return;
    }
  }

  /// Evaluates `e` for side effects only.
  void genDiscarded(const Expr* e) {
    switch (e->kind) {
      case ExprKind::Assign:
        genAssign(e, /*needValue=*/false);
        return;
      case ExprKind::Unary:
        switch (e->unaryOp) {
          case UnaryOp::PreInc:
          case UnaryOp::PreDec:
          case UnaryOp::PostInc:
          case UnaryOp::PostDec:
            genUnary(e, /*needValue=*/false);
            return;
          default:
            break;
        }
        break;
      case ExprKind::Call:
        genCall(e, /*needValue=*/false);
        return;
      default:
        break;
    }
    genValue(e);
    if (!e->type->isVoid()) {
      emit(Op::Pop);
    }
  }

  /// Leaves a normalized i32 0/1 on the stack.
  void genCondition(const Expr* e) {
    genValue(e);
    const Type* t = e->type;
    if (t->isPointer()) {
      pushConst(0, TypeTag::U64);
      emit(Op::CmpNe, TypeTag::U64);
      return;
    }
    const TypeTag tag = tagFor(t);
    switch (tag) {
      case TypeTag::F32: pushConstF32(0.0f); break;
      case TypeTag::F64: pushConstF64(0.0); break;
      default: pushConst(0, tag); break;
    }
    emit(Op::CmpNe, tag);
  }

  void genUnary(const Expr* e, bool needValue) {
    switch (e->unaryOp) {
      case UnaryOp::Plus:
        genValue(e->lhs);
        return;
      case UnaryOp::Neg:
        genValue(e->lhs);
        emit(Op::Neg, tagFor(e->type));
        return;
      case UnaryOp::Not:
        genCondition(e->lhs);
        emit(Op::LogNot);
        return;
      case UnaryOp::BitNot:
        genValue(e->lhs);
        emit(Op::BitNot, tagFor(e->type));
        return;
      case UnaryOp::Deref:
        if (e->type->isStruct() || e->type->isArray()) {
          genValue(e->lhs);
        } else {
          genValue(e->lhs);
          emit(Op::Load, tagFor(e->type));
        }
        return;
      case UnaryOp::AddrOf:
        genAddr(e->lhs);
        return;
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        genIncDec(e, needValue);
        return;
    }
  }

  void genIncDec(const Expr* e, bool needValue) {
    const bool isInc = e->unaryOp == UnaryOp::PreInc ||
                       e->unaryOp == UnaryOp::PostInc;
    const bool isPost = e->unaryOp == UnaryOp::PostInc ||
                        e->unaryOp == UnaryOp::PostDec;
    const Type* t = e->type;
    const TypeTag tag = tagFor(t);

    genAddr(e->lhs);
    emit(Op::Dup);
    emit(Op::Load, tag); // [ptr, old]

    if (isPost && needValue) {
      emit(Op::Dup); // [ptr, old, old]
      emitStepAdd(t, tag, isInc); // [ptr, old, new]
      emit(Op::Rot3);             // [old, new, ptr]
      emit(Op::Swap);             // [old, ptr, new]
      emit(Op::Store, tag);       // [old]
      return;
    }
    emitStepAdd(t, tag, isInc); // [ptr, new]
    if (needValue) {
      emit(Op::StoreKeep, tag); // [new]
    } else {
      emit(Op::Store, tag);
    }
  }

  /// Adds or subtracts "one step" (1, 1.0, or sizeof pointee).
  void emitStepAdd(const Type* t, TypeTag tag, bool isInc) {
    if (t->isPointer()) {
      pushConst(t->pointee()->size(), TypeTag::U64);
      emit(isInc ? Op::Add : Op::Sub, TypeTag::U64);
      return;
    }
    switch (tag) {
      case TypeTag::F32: pushConstF32(1.0f); break;
      case TypeTag::F64: pushConstF64(1.0); break;
      default: pushConst(1, tag); break;
    }
    emit(isInc ? Op::Add : Op::Sub, tag);
  }

  void genBinary(const Expr* e) {
    const Type* lt = e->lhs->type;
    const Type* rt = e->rhs->type;

    switch (e->binaryOp) {
      case BinaryOp::LogAnd: {
        genCondition(e->lhs);
        const std::int32_t jz1 = emit(Op::Jz);
        genCondition(e->rhs);
        const std::int32_t jz2 = emit(Op::Jz);
        pushConst(1, TypeTag::I32);
        const std::int32_t jend = emit(Op::Jmp);
        patch(jz1, here());
        patch(jz2, here());
        pushConst(0, TypeTag::I32);
        patch(jend, here());
        return;
      }
      case BinaryOp::LogOr: {
        genCondition(e->lhs);
        const std::int32_t jnz1 = emit(Op::Jnz);
        genCondition(e->rhs);
        const std::int32_t jnz2 = emit(Op::Jnz);
        pushConst(0, TypeTag::I32);
        const std::int32_t jend = emit(Op::Jmp);
        patch(jnz1, here());
        patch(jnz2, here());
        pushConst(1, TypeTag::I32);
        patch(jend, here());
        return;
      }
      default:
        break;
    }

    // Pointer arithmetic.
    if ((e->binaryOp == BinaryOp::Add || e->binaryOp == BinaryOp::Sub)) {
      if (lt->isPointer() && rt->isIntegerScalar()) {
        genValue(e->lhs);
        genValue(e->rhs);
        pushConst(lt->pointee()->size(), TypeTag::I64);
        emit(Op::Mul, TypeTag::I64);
        emit(e->binaryOp == BinaryOp::Add ? Op::Add : Op::Sub, TypeTag::U64);
        return;
      }
      if (e->binaryOp == BinaryOp::Add && lt->isIntegerScalar() &&
          rt->isPointer()) {
        genValue(e->rhs);
        genValue(e->lhs);
        pushConst(rt->pointee()->size(), TypeTag::I64);
        emit(Op::Mul, TypeTag::I64);
        emit(Op::Add, TypeTag::U64);
        return;
      }
      if (e->binaryOp == BinaryOp::Sub && lt->isPointer() &&
          rt->isPointer()) {
        genValue(e->lhs);
        genValue(e->rhs);
        emit(Op::Sub, TypeTag::I64);
        pushConst(lt->pointee()->size(), TypeTag::I64);
        emit(Op::Div, TypeTag::I64);
        return;
      }
    }

    genValue(e->lhs);
    genValue(e->rhs);
    const TypeTag opTag =
        lt->isPointer() ? TypeTag::U64 : tagFor(e->lhs->type);
    switch (e->binaryOp) {
      case BinaryOp::Add: emit(Op::Add, opTag); return;
      case BinaryOp::Sub: emit(Op::Sub, opTag); return;
      case BinaryOp::Mul: emit(Op::Mul, opTag); return;
      case BinaryOp::Div: emit(Op::Div, opTag); return;
      case BinaryOp::Rem: emit(Op::Rem, opTag); return;
      case BinaryOp::Shl: emit(Op::Shl, opTag); return;
      case BinaryOp::Shr: emit(Op::Shr, opTag); return;
      case BinaryOp::BitAnd: emit(Op::BitAnd, opTag); return;
      case BinaryOp::BitOr: emit(Op::BitOr, opTag); return;
      case BinaryOp::BitXor: emit(Op::BitXor, opTag); return;
      case BinaryOp::EqCmp: emit(Op::CmpEq, opTag); return;
      case BinaryOp::Ne: emit(Op::CmpNe, opTag); return;
      case BinaryOp::Lt: emit(Op::CmpLt, opTag); return;
      case BinaryOp::Le: emit(Op::CmpLe, opTag); return;
      case BinaryOp::Gt: emit(Op::CmpGt, opTag); return;
      case BinaryOp::Ge: emit(Op::CmpGe, opTag); return;
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr:
        COMMON_CHECK(false);
        return;
    }
  }

  void genAssign(const Expr* e, bool needValue) {
    if (e->type->isStruct()) {
      genStructAssign(e, needValue);
      if (needValue) {
        // The address of the assigned-to struct is the "value".
      }
      return;
    }
    const TypeTag tag = tagFor(e->type);
    if (e->assignOp == AssignOp::None) {
      genAddr(e->lhs);
      genValue(e->rhs);
      emit(needValue ? Op::StoreKeep : Op::Store, tag);
      return;
    }
    // Compound assignment: load, operate in the common type, store back.
    const Type* common = e->rhs->type; // sema coerced rhs to the op type
    genAddr(e->lhs);
    emit(Op::Dup);
    emit(Op::Load, tag); // [ptr, cur]

    if (e->lhs->type->isPointer()) {
      genValue(e->rhs); // i64 element count
      pushConst(e->lhs->type->pointee()->size(), TypeTag::I64);
      emit(Op::Mul, TypeTag::I64);
      emit(e->assignOp == AssignOp::Add ? Op::Add : Op::Sub, TypeTag::U64);
      emit(needValue ? Op::StoreKeep : Op::Store, tag);
      return;
    }

    emitConv(e->lhs->type, common); // widen current value
    genValue(e->rhs);
    const TypeTag commonTag = tagFor(common);
    switch (e->assignOp) {
      case AssignOp::Add: emit(Op::Add, commonTag); break;
      case AssignOp::Sub: emit(Op::Sub, commonTag); break;
      case AssignOp::Mul: emit(Op::Mul, commonTag); break;
      case AssignOp::Div: emit(Op::Div, commonTag); break;
      case AssignOp::Rem: emit(Op::Rem, commonTag); break;
      case AssignOp::Shl: emit(Op::Shl, commonTag); break;
      case AssignOp::Shr: emit(Op::Shr, commonTag); break;
      case AssignOp::And: emit(Op::BitAnd, commonTag); break;
      case AssignOp::Or: emit(Op::BitOr, commonTag); break;
      case AssignOp::Xor: emit(Op::BitXor, commonTag); break;
      case AssignOp::None: COMMON_CHECK(false); break;
    }
    emitConv(common, e->lhs->type); // narrow back to the lhs type
    emit(needValue ? Op::StoreKeep : Op::Store, tag);
  }

  void genStructAssign(const Expr* e, bool needAddr) {
    COMMON_CHECK(e->assignOp == AssignOp::None);
    genAddr(e->lhs);
    if (needAddr) {
      emit(Op::Dup);
    }
    genValue(e->rhs); // source address
    emit(Op::MemCopy, TypeTag::U8,
         static_cast<std::int32_t>(e->type->size()));
  }

  void genCast(const Expr* e) {
    genValue(e->lhs);
    emitConv(e->lhs->type, e->type);
  }

  void emitConv(const Type* from, const Type* to) {
    if (from == to) {
      return;
    }
    const TypeTag fromTag = tagFor(from);
    const TypeTag toTag = tagFor(to);
    if (fromTag == toTag) {
      return;
    }
    // Pointer <-> integer reinterpretations share the U64 representation.
    const auto isPtrLike = [](TypeTag t) {
      return t == TypeTag::Ptr || t == TypeTag::U64 || t == TypeTag::I64;
    };
    if ((fromTag == TypeTag::Ptr || toTag == TypeTag::Ptr) &&
        isPtrLike(fromTag) && isPtrLike(toTag)) {
      return;
    }
    emit(Op::Conv, TypeTag::I32,
         (static_cast<std::int32_t>(fromTag) << 8) |
             static_cast<std::int32_t>(toTag));
  }

  void genCall(const Expr* e, bool needValue) {
    if (e->builtinId >= 0) {
      genBuiltinCall(e, needValue);
      return;
    }
    const FuncDecl* callee = e->resolvedFunc;
    const std::int32_t index = funcIndex_.at(callee);

    std::int32_t tempOffset = -1;
    if (callee->returnType->isStruct()) {
      tempOffset = static_cast<std::int32_t>(allocFrame(callee->returnType));
      emit(Op::PushFrameAddr, TypeTag::Ptr, tempOffset);
    }
    for (const Expr* arg : e->args) {
      genValue(arg); // scalars as values, structs as addresses
    }
    emit(Op::Call, TypeTag::I32, index);

    if (callee->returnType->isStruct()) {
      emit(Op::PushFrameAddr, TypeTag::Ptr, tempOffset);
      if (!needValue) {
        emit(Op::Pop);
      }
      return;
    }
    if (!callee->returnType->isVoid() && !needValue) {
      emit(Op::Pop);
    }
  }

  void genBuiltinCall(const Expr* e, bool needValue) {
    const auto id = static_cast<Builtin>(e->builtinId);
    if (id == Builtin::Barrier) {
      // The flags argument is a compile-time constant in every real
      // kernel; it does not affect the simulator's full barrier.
      emit(Op::Barrier);
      return;
    }
    for (const Expr* arg : e->args) {
      genValue(arg);
    }
    // The tag lets the VM pick the float width / integer signedness.
    TypeTag tag = TypeTag::I32;
    if (!e->args.empty()) {
      const Type* last = e->args.back()->type;
      tag = last->isPointer() ? tagFor(last->pointee()) : tagFor(last);
    }
    if (e->args.size() >= 1 && e->args[0]->type->isPointer()) {
      // Atomics: operand type is the pointee.
      tag = tagFor(e->args[0]->type->pointee());
    }
    emit(Op::CallBuiltin, tag, e->builtinId);
    if (!e->type->isVoid() && !needValue) {
      emit(Op::Pop);
    }
  }

  const TranslationUnit& unit_;
  Program program_;
  std::unordered_map<const FuncDecl*, std::int32_t> funcIndex_;
  std::vector<const FuncDecl*> order_;
  std::unordered_map<std::uint64_t, std::int32_t> constCache_;
  std::uint32_t frameTop_ = 0;
  std::uint32_t localTop_ = 0;
  std::uint32_t sretOffset_ = 0;
  const FuncDecl* currentFunc_ = nullptr;
  std::vector<LoopCtx*> loops_;
};

} // namespace

Program generate(const TranslationUnit& unit) {
  return CodeGen(unit).run();
}

Program compile(const std::string& source) {
  auto unit = parse(source);
  analyze(*unit);
  Program program = generate(*unit);
  program.sourceHash = common::Sha256::hexDigest(source);
  return program;
}

} // namespace clc
