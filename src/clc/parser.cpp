#include "clc/parser.h"

#include <optional>
#include <unordered_map>

#include "clc/lexer.h"

namespace clc {

namespace {

/// Parsed declaration specifiers: qualifiers + base type + address space.
struct DeclSpec {
  const Type* baseType = nullptr;
  AddressSpace space = AddressSpace::Private;
  bool isKernel = false;
  bool sawAddressSpace = false;
};

class Parser {
public:
  explicit Parser(const std::string& source)
      : tokens_(lexAndPreprocess(source)),
        unit_(std::make_unique<TranslationUnit>()) {}

  std::unique_ptr<TranslationUnit> run() {
    while (!cur().is(TokKind::Eof)) {
      topLevelDecl();
    }
    return std::move(unit_);
  }

private:
  // --- token helpers -------------------------------------------------------

  const Token& cur() const noexcept { return tokens_[pos_]; }
  const Token& peek(std::size_t ahead = 1) const noexcept {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Token consume() { return tokens_[pos_++]; }

  bool accept(TokKind kind) {
    if (cur().is(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Token expect(TokKind kind, const char* context) {
    if (!cur().is(kind)) {
      fail(std::string("expected ") + tokKindName(kind) + " " + context +
           ", found " + describe(cur()));
    }
    return consume();
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw CompileError(message, cur().loc);
  }

  static std::string describe(const Token& tok) {
    if (tok.is(TokKind::Identifier)) {
      return "'" + tok.text + "'";
    }
    return tokKindName(tok.kind);
  }

  // --- types ----------------------------------------------------------------

  bool isTypeStart(const Token& tok) const {
    switch (tok.kind) {
      case TokKind::KwVoid:
      case TokKind::KwBool:
      case TokKind::KwChar:
      case TokKind::KwUChar:
      case TokKind::KwShort:
      case TokKind::KwUShort:
      case TokKind::KwInt:
      case TokKind::KwUInt:
      case TokKind::KwLong:
      case TokKind::KwULong:
      case TokKind::KwFloat:
      case TokKind::KwDouble:
      case TokKind::KwUnsigned:
      case TokKind::KwSigned:
      case TokKind::KwSizeT:
      case TokKind::KwStruct:
      case TokKind::KwConst:
      case TokKind::KwVolatile:
      case TokKind::KwGlobal:
      case TokKind::KwLocal:
      case TokKind::KwPrivate:
      case TokKind::KwConstantAS:
        return true;
      case TokKind::Identifier:
        return typedefs_.count(tok.text) != 0;
      default:
        return false;
    }
  }

  /// Consumes declaration specifiers. `allowKernel` permits __kernel etc.
  DeclSpec declSpec(bool allowKernel) {
    DeclSpec spec;
    bool sawUnsigned = false;
    bool sawSigned = false;
    const Type* base = nullptr;

    for (;;) {
      const Token& tok = cur();
      switch (tok.kind) {
        case TokKind::KwConst:
        case TokKind::KwVolatile:
        case TokKind::KwStatic:
        case TokKind::KwInline:
        case TokKind::KwDevice:
          ++pos_;
          continue;
        case TokKind::KwKernel:
          if (!allowKernel) {
            fail("'__kernel' is only allowed on top-level functions");
          }
          spec.isKernel = true;
          ++pos_;
          continue;
        case TokKind::KwGlobal:
          spec.space = AddressSpace::Global;
          spec.sawAddressSpace = true;
          ++pos_;
          continue;
        case TokKind::KwLocal:
          spec.space = AddressSpace::Local;
          spec.sawAddressSpace = true;
          ++pos_;
          continue;
        case TokKind::KwConstantAS:
          spec.space = AddressSpace::Constant;
          spec.sawAddressSpace = true;
          ++pos_;
          continue;
        case TokKind::KwPrivate:
          spec.space = AddressSpace::Private;
          spec.sawAddressSpace = true;
          ++pos_;
          continue;
        case TokKind::KwUnsigned:
          sawUnsigned = true;
          ++pos_;
          continue;
        case TokKind::KwSigned:
          sawSigned = true;
          ++pos_;
          continue;
        default:
          break;
      }
      break;
    }

    TypeTable& types = unit_->types();
    switch (cur().kind) {
      case TokKind::KwVoid: base = types.scalar(ScalarKind::Void); ++pos_; break;
      case TokKind::KwBool: base = types.scalar(ScalarKind::Bool); ++pos_; break;
      case TokKind::KwChar: base = types.scalar(ScalarKind::I8); ++pos_; break;
      case TokKind::KwUChar: base = types.scalar(ScalarKind::U8); ++pos_; break;
      case TokKind::KwShort: base = types.scalar(ScalarKind::I16); ++pos_; break;
      case TokKind::KwUShort: base = types.scalar(ScalarKind::U16); ++pos_; break;
      case TokKind::KwInt: base = types.scalar(ScalarKind::I32); ++pos_; break;
      case TokKind::KwUInt: base = types.scalar(ScalarKind::U32); ++pos_; break;
      case TokKind::KwLong: base = types.scalar(ScalarKind::I64); ++pos_; break;
      case TokKind::KwULong: base = types.scalar(ScalarKind::U64); ++pos_; break;
      case TokKind::KwFloat: base = types.scalar(ScalarKind::F32); ++pos_; break;
      case TokKind::KwDouble: base = types.scalar(ScalarKind::F64); ++pos_; break;
      case TokKind::KwSizeT: base = types.scalar(ScalarKind::U64); ++pos_; break;
      case TokKind::KwStruct: {
        ++pos_;
        const Token nameTok = expect(TokKind::Identifier, "after 'struct'");
        if (cur().is(TokKind::LBrace)) {
          base = structBody(nameTok.text);
        } else {
          base = unit_->types().findStruct(nameTok.text);
          if (base == nullptr) {
            throw CompileError("unknown struct '" + nameTok.text + "'",
                               nameTok.loc);
          }
        }
        break;
      }
      case TokKind::Identifier: {
        const auto it = typedefs_.find(cur().text);
        if (it != typedefs_.end()) {
          base = it->second;
          ++pos_;
        }
        break;
      }
      default:
        break;
    }

    if (base == nullptr) {
      if (sawUnsigned || sawSigned) {
        base = types.scalar(sawUnsigned ? ScalarKind::U32 : ScalarKind::I32);
      } else {
        fail("expected a type, found " + describe(cur()));
      }
    } else if (sawUnsigned || sawSigned) {
      if (!base->isIntegerScalar()) {
        fail("'unsigned'/'signed' applied to non-integer type");
      }
      ScalarKind kind = base->scalarKind();
      if (sawUnsigned) {
        switch (kind) {
          case ScalarKind::I8: kind = ScalarKind::U8; break;
          case ScalarKind::I16: kind = ScalarKind::U16; break;
          case ScalarKind::I32: kind = ScalarKind::U32; break;
          case ScalarKind::I64: kind = ScalarKind::U64; break;
          default: break;
        }
      }
      base = types.scalar(kind);
    }

    // Trailing qualifiers (e.g. "float const").
    while (cur().is(TokKind::KwConst) || cur().is(TokKind::KwVolatile)) {
      ++pos_;
    }
    spec.baseType = base;
    return spec;
  }

  /// Parses "* const* ..." pointer declarators on top of a base type.
  const Type* pointerDeclarators(const Type* base, AddressSpace space) {
    const Type* type = base;
    while (accept(TokKind::Star)) {
      type = unit_->types().pointerTo(type, space);
      while (cur().is(TokKind::KwConst) || cur().is(TokKind::KwVolatile)) {
        ++pos_;
      }
    }
    return type;
  }

  /// Parses a struct body "{ field; ... }" and declares the struct. The
  /// struct is forward-declared before its fields parse, so pointer
  /// fields may reference the struct itself.
  const Type* structBody(const std::string& name) {
    const Type* declared = nullptr;
    try {
      declared = unit_->types().forwardDeclareStruct(name);
    } catch (const common::InvalidArgument& e) {
      fail(e.what());
    }
    expect(TokKind::LBrace, "to open struct body");
    std::vector<StructField> fields;
    while (!accept(TokKind::RBrace)) {
      DeclSpec spec = declSpec(/*allowKernel=*/false);
      for (;;) {
        const Type* fieldType = pointerDeclarators(spec.baseType, spec.space);
        const Token nameTok = expect(TokKind::Identifier, "in struct field");
        if (accept(TokKind::LBracket)) {
          const std::uint64_t length = constArrayLength();
          expect(TokKind::RBracket, "after array length");
          fieldType = unit_->types().arrayOf(fieldType, length);
        }
        fields.push_back(StructField{nameTok.text, fieldType, 0});
        if (accept(TokKind::Comma)) {
          continue;
        }
        expect(TokKind::Semicolon, "after struct field");
        break;
      }
    }
    try {
      unit_->types().completeStruct(declared, std::move(fields));
    } catch (const common::InvalidArgument& e) {
      fail(e.what());
    }
    return declared;
  }

  std::uint64_t constArrayLength() {
    Expr* e = conditionalExpr();
    const auto value = evalConstInt(e);
    if (!value.has_value() || static_cast<std::int64_t>(*value) <= 0) {
      throw CompileError("array length must be a positive integer constant",
                         e->loc);
    }
    return *value;
  }

  /// Best-effort compile-time integer evaluation for array lengths.
  std::optional<std::uint64_t> evalConstInt(const Expr* e) const {
    switch (e->kind) {
      case ExprKind::IntLit:
      case ExprKind::BoolLit:
        return e->intValue;
      case ExprKind::Unary: {
        const auto v = evalConstInt(e->lhs);
        if (!v) return std::nullopt;
        switch (e->unaryOp) {
          case UnaryOp::Plus: return v;
          case UnaryOp::Neg: return std::uint64_t(-std::int64_t(*v));
          case UnaryOp::BitNot: return ~*v;
          case UnaryOp::Not: return std::uint64_t(*v == 0);
          default: return std::nullopt;
        }
      }
      case ExprKind::Binary: {
        const auto l = evalConstInt(e->lhs);
        const auto r = evalConstInt(e->rhs);
        if (!l || !r) return std::nullopt;
        switch (e->binaryOp) {
          case BinaryOp::Add: return *l + *r;
          case BinaryOp::Sub: return *l - *r;
          case BinaryOp::Mul: return *l * *r;
          case BinaryOp::Div: return *r == 0 ? std::nullopt
                                             : std::optional(*l / *r);
          case BinaryOp::Rem: return *r == 0 ? std::nullopt
                                             : std::optional(*l % *r);
          case BinaryOp::Shl: return *l << (*r & 63);
          case BinaryOp::Shr: return *l >> (*r & 63);
          case BinaryOp::BitAnd: return *l & *r;
          case BinaryOp::BitOr: return *l | *r;
          case BinaryOp::BitXor: return *l ^ *r;
          default: return std::nullopt;
        }
      }
      case ExprKind::Cast:
        return evalConstInt(e->lhs);
      case ExprKind::SizeofType:
        return e->writtenType->size();
      default:
        return std::nullopt;
    }
  }

  // --- top-level -------------------------------------------------------------

  void topLevelDecl() {
    if (accept(TokKind::Semicolon)) {
      return;
    }
    if (cur().is(TokKind::KwTypedef)) {
      typedefDecl();
      return;
    }
    if (cur().is(TokKind::KwStruct) && peek().is(TokKind::Identifier) &&
        peek(2).is(TokKind::LBrace)) {
      // struct Name { ... };
      ++pos_;
      const Token nameTok = consume();
      structBody(nameTok.text);
      typedefs_[nameTok.text] = unit_->types().findStruct(nameTok.text);
      expect(TokKind::Semicolon, "after struct declaration");
      return;
    }
    functionDecl();
  }

  void typedefDecl() {
    expect(TokKind::KwTypedef, "to begin typedef");
    if (cur().is(TokKind::KwStruct) &&
        (peek().is(TokKind::LBrace) ||
         (peek().is(TokKind::Identifier) && peek(2).is(TokKind::LBrace)))) {
      // typedef struct [Tag] { ... } Name;
      ++pos_;
      std::string tag;
      if (cur().is(TokKind::Identifier)) {
        tag = consume().text;
      }
      // Declare under the typedef name; parse body with a placeholder when
      // the tag is absent.
      const Token* nameTokPeek = nullptr;
      // We must know the final name only after the body, so parse with tag
      // or a temporary, then alias.
      const std::string structName =
          !tag.empty() ? tag : ("__anon_struct_" + std::to_string(anonId_++));
      const Type* type = structBody(structName);
      const Token nameTok = expect(TokKind::Identifier, "for typedef name");
      (void)nameTokPeek;
      try {
        unit_->types().aliasStruct(nameTok.text, type);
      } catch (const common::InvalidArgument& e) {
        fail(e.what());
      }
      registerTypedef(nameTok, type);
      if (!tag.empty()) {
        typedefs_[tag] = type;
      }
      expect(TokKind::Semicolon, "after typedef");
      return;
    }
    // typedef existing-type Name;
    DeclSpec spec = declSpec(/*allowKernel=*/false);
    const Type* type = pointerDeclarators(spec.baseType, spec.space);
    const Token nameTok = expect(TokKind::Identifier, "for typedef name");
    registerTypedef(nameTok, type);
    expect(TokKind::Semicolon, "after typedef");
  }

  void registerTypedef(const Token& nameTok, const Type* type) {
    const auto it = typedefs_.find(nameTok.text);
    if (it != typedefs_.end() && it->second != type) {
      throw CompileError(
          "typedef '" + nameTok.text + "' redefined with a different type",
          nameTok.loc);
    }
    typedefs_[nameTok.text] = type;
  }

  void functionDecl() {
    DeclSpec spec = declSpec(/*allowKernel=*/true);
    const Type* returnType = pointerDeclarators(spec.baseType, spec.space);
    const Token nameTok = expect(TokKind::Identifier, "for function name");

    FuncDecl* func = unit_->newFuncDecl();
    func->name = nameTok.text;
    func->returnType = returnType;
    func->isKernel = spec.isKernel;
    func->loc = nameTok.loc;

    expect(TokKind::LParen, "to open parameter list");
    if (!cur().is(TokKind::RParen)) {
      if (cur().is(TokKind::KwVoid) && peek().is(TokKind::RParen)) {
        ++pos_; // f(void)
      } else {
        for (;;) {
          func->params.push_back(paramDecl(func->isKernel));
          if (!accept(TokKind::Comma)) {
            break;
          }
        }
      }
    }
    expect(TokKind::RParen, "to close parameter list");

    if (func->isKernel && !func->returnType->isVoid()) {
      throw CompileError("kernel functions must return void", func->loc);
    }

    if (accept(TokKind::Semicolon)) {
      // Prototype only.
      registerFunction(func);
      return;
    }
    registerFunction(func);
    func->bodyStmt = block();
  }

  void registerFunction(FuncDecl* func) {
    for (FuncDecl*& existing : unit_->functions) {
      if (existing->name == func->name) {
        if (existing->bodyStmt != nullptr) {
          throw CompileError("function '" + func->name + "' redefined",
                             func->loc);
        }
        existing = func; // definition replaces prototype
        return;
      }
    }
    unit_->functions.push_back(func);
  }

  ParamDecl paramDecl(bool kernelContext) {
    DeclSpec spec = declSpec(/*allowKernel=*/false);
    // A kernel parameter written as a bare pointer ("float* p") defaults
    // to the global address space. This matches CUDA semantics for
    // __global__ functions; explicit __private stays an error (sema).
    if (kernelContext && !spec.sawAddressSpace) {
      spec.space = AddressSpace::Global;
    }
    const Type* type = pointerDeclarators(spec.baseType, spec.space);
    ParamDecl param;
    param.loc = cur().loc;
    if (cur().is(TokKind::Identifier)) {
      param.name = consume().text;
    }
    if (accept(TokKind::LBracket)) {
      // "T name[]" decays to a pointer parameter.
      if (!cur().is(TokKind::RBracket)) {
        constArrayLength(); // size is parsed and ignored, as in C
      }
      expect(TokKind::RBracket, "after parameter array");
      type = unit_->types().pointerTo(type, spec.space);
    }
    param.type = type;
    return param;
  }

  // --- statements -------------------------------------------------------------

  Stmt* block() {
    const Token open = expect(TokKind::LBrace, "to open block");
    Stmt* stmt = unit_->newStmt(StmtKind::Block, open.loc);
    while (!accept(TokKind::RBrace)) {
      if (cur().is(TokKind::Eof)) {
        throw CompileError("unterminated block", open.loc);
      }
      stmt->body.push_back(statement());
    }
    return stmt;
  }

  Stmt* statement() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::LBrace:
        return block();
      case TokKind::Semicolon:
        ++pos_;
        return unit_->newStmt(StmtKind::Empty, loc);
      case TokKind::KwIf: return ifStatement();
      case TokKind::KwFor: return forStatement();
      case TokKind::KwWhile: return whileStatement();
      case TokKind::KwDo: return doWhileStatement();
      case TokKind::KwReturn: {
        ++pos_;
        Stmt* stmt = unit_->newStmt(StmtKind::Return, loc);
        if (!cur().is(TokKind::Semicolon)) {
          stmt->expr = expression();
        }
        expect(TokKind::Semicolon, "after return");
        return stmt;
      }
      case TokKind::KwBreak:
        ++pos_;
        expect(TokKind::Semicolon, "after break");
        return unit_->newStmt(StmtKind::Break, loc);
      case TokKind::KwContinue:
        ++pos_;
        expect(TokKind::Semicolon, "after continue");
        return unit_->newStmt(StmtKind::Continue, loc);
      case TokKind::KwSwitch:
      case TokKind::KwCase:
      case TokKind::KwDefault:
      case TokKind::KwGoto:
        fail("statement not supported by clc (use if/else chains)");
      default:
        break;
    }
    if (isTypeStart(cur()) && !isCastLookahead()) {
      Stmt* stmt = declStatement();
      expect(TokKind::Semicolon, "after declaration");
      return stmt;
    }
    Stmt* stmt = unit_->newStmt(StmtKind::ExprStmt, loc);
    stmt->expr = expression();
    expect(TokKind::Semicolon, "after expression");
    return stmt;
  }

  /// A statement beginning with a type name is a declaration; this guards
  /// against the (rare) case of an expression statement starting with a
  /// parenthesized cast, which cannot happen since casts start with '('.
  bool isCastLookahead() const { return false; }

  Stmt* declStatement() {
    const SourceLoc loc = cur().loc;
    DeclSpec spec = declSpec(/*allowKernel=*/false);
    Stmt* stmt = unit_->newStmt(StmtKind::Decl, loc);
    for (;;) {
      const Type* type = pointerDeclarators(spec.baseType, spec.space);
      const Token nameTok = expect(TokKind::Identifier, "in declaration");
      while (accept(TokKind::LBracket)) {
        const std::uint64_t length = constArrayLength();
        expect(TokKind::RBracket, "after array length");
        type = unit_->types().arrayOf(type, length);
      }
      VarDecl* var = unit_->newVarDecl();
      var->name = nameTok.text;
      var->type = type;
      // The address-space qualifier binds to the pointee for pointer
      // declarators ("__global int* p" is a private pointer to global
      // memory); only non-pointer declarations live in the named space.
      var->space = (spec.sawAddressSpace && !type->isPointer())
                       ? spec.space
                       : AddressSpace::Private;
      var->loc = nameTok.loc;
      if (accept(TokKind::Eq)) {
        var->init = assignmentExpr();
      }
      stmt->decls.push_back(var);
      if (!accept(TokKind::Comma)) {
        break;
      }
    }
    return stmt;
  }

  Stmt* ifStatement() {
    const Token kw = expect(TokKind::KwIf, "");
    Stmt* stmt = unit_->newStmt(StmtKind::If, kw.loc);
    expect(TokKind::LParen, "after 'if'");
    stmt->expr = expression();
    expect(TokKind::RParen, "after if condition");
    stmt->thenStmt = statement();
    if (accept(TokKind::KwElse)) {
      stmt->elseStmt = statement();
    }
    return stmt;
  }

  Stmt* forStatement() {
    const Token kw = expect(TokKind::KwFor, "");
    Stmt* stmt = unit_->newStmt(StmtKind::For, kw.loc);
    expect(TokKind::LParen, "after 'for'");
    if (!accept(TokKind::Semicolon)) {
      if (isTypeStart(cur())) {
        stmt->forInit = declStatement();
      } else {
        Stmt* init = unit_->newStmt(StmtKind::ExprStmt, cur().loc);
        init->expr = expression();
        stmt->forInit = init;
      }
      expect(TokKind::Semicolon, "after for-init");
    }
    if (!cur().is(TokKind::Semicolon)) {
      stmt->expr = expression();
    }
    expect(TokKind::Semicolon, "after for-condition");
    if (!cur().is(TokKind::RParen)) {
      stmt->forStep = expression();
    }
    expect(TokKind::RParen, "after for-step");
    stmt->thenStmt = statement();
    return stmt;
  }

  Stmt* whileStatement() {
    const Token kw = expect(TokKind::KwWhile, "");
    Stmt* stmt = unit_->newStmt(StmtKind::While, kw.loc);
    expect(TokKind::LParen, "after 'while'");
    stmt->expr = expression();
    expect(TokKind::RParen, "after while condition");
    stmt->thenStmt = statement();
    return stmt;
  }

  Stmt* doWhileStatement() {
    const Token kw = expect(TokKind::KwDo, "");
    Stmt* stmt = unit_->newStmt(StmtKind::DoWhile, kw.loc);
    stmt->thenStmt = statement();
    expect(TokKind::KwWhile, "after do-body");
    expect(TokKind::LParen, "after 'while'");
    stmt->expr = expression();
    expect(TokKind::RParen, "after do-while condition");
    expect(TokKind::Semicolon, "after do-while");
    return stmt;
  }

  // --- expressions ------------------------------------------------------------

  Expr* expression() { return assignmentExpr(); }

  Expr* assignmentExpr() {
    Expr* lhs = conditionalExpr();
    AssignOp op;
    switch (cur().kind) {
      case TokKind::Eq: op = AssignOp::None; break;
      case TokKind::PlusEq: op = AssignOp::Add; break;
      case TokKind::MinusEq: op = AssignOp::Sub; break;
      case TokKind::StarEq: op = AssignOp::Mul; break;
      case TokKind::SlashEq: op = AssignOp::Div; break;
      case TokKind::PercentEq: op = AssignOp::Rem; break;
      case TokKind::ShlEq: op = AssignOp::Shl; break;
      case TokKind::ShrEq: op = AssignOp::Shr; break;
      case TokKind::AmpEq: op = AssignOp::And; break;
      case TokKind::PipeEq: op = AssignOp::Or; break;
      case TokKind::CaretEq: op = AssignOp::Xor; break;
      default:
        return lhs;
    }
    const SourceLoc loc = consume().loc;
    Expr* expr = unit_->newExpr(ExprKind::Assign, loc);
    expr->assignOp = op;
    expr->lhs = lhs;
    expr->rhs = assignmentExpr();
    return expr;
  }

  Expr* conditionalExpr() {
    Expr* cond = binaryExpr(0);
    if (!cur().is(TokKind::Question)) {
      return cond;
    }
    const SourceLoc loc = consume().loc;
    Expr* expr = unit_->newExpr(ExprKind::Ternary, loc);
    expr->lhs = cond;
    expr->rhs = expression();
    expect(TokKind::Colon, "in ternary expression");
    expr->ternaryElse = conditionalExpr();
    return expr;
  }

  struct BinOpInfo {
    BinaryOp op;
    int precedence;
  };

  std::optional<BinOpInfo> binOpFor(TokKind kind) const {
    switch (kind) {
      case TokKind::PipePipe: return BinOpInfo{BinaryOp::LogOr, 1};
      case TokKind::AmpAmp: return BinOpInfo{BinaryOp::LogAnd, 2};
      case TokKind::Pipe: return BinOpInfo{BinaryOp::BitOr, 3};
      case TokKind::Caret: return BinOpInfo{BinaryOp::BitXor, 4};
      case TokKind::Amp: return BinOpInfo{BinaryOp::BitAnd, 5};
      case TokKind::EqEq: return BinOpInfo{BinaryOp::EqCmp, 6};
      case TokKind::NotEq: return BinOpInfo{BinaryOp::Ne, 6};
      case TokKind::Less: return BinOpInfo{BinaryOp::Lt, 7};
      case TokKind::Greater: return BinOpInfo{BinaryOp::Gt, 7};
      case TokKind::LessEq: return BinOpInfo{BinaryOp::Le, 7};
      case TokKind::GreaterEq: return BinOpInfo{BinaryOp::Ge, 7};
      case TokKind::Shl: return BinOpInfo{BinaryOp::Shl, 8};
      case TokKind::Shr: return BinOpInfo{BinaryOp::Shr, 8};
      case TokKind::Plus: return BinOpInfo{BinaryOp::Add, 9};
      case TokKind::Minus: return BinOpInfo{BinaryOp::Sub, 9};
      case TokKind::Star: return BinOpInfo{BinaryOp::Mul, 10};
      case TokKind::Slash: return BinOpInfo{BinaryOp::Div, 10};
      case TokKind::Percent: return BinOpInfo{BinaryOp::Rem, 10};
      default: return std::nullopt;
    }
  }

  Expr* binaryExpr(int minPrecedence) {
    Expr* lhs = unaryExpr();
    for (;;) {
      const auto info = binOpFor(cur().kind);
      if (!info || info->precedence < minPrecedence) {
        return lhs;
      }
      const SourceLoc loc = consume().loc;
      Expr* rhs = binaryExpr(info->precedence + 1);
      Expr* expr = unit_->newExpr(ExprKind::Binary, loc);
      expr->binaryOp = info->op;
      expr->lhs = lhs;
      expr->rhs = rhs;
      lhs = expr;
    }
  }

  Expr* unaryExpr() {
    const SourceLoc loc = cur().loc;
    switch (cur().kind) {
      case TokKind::Plus: ++pos_; return makeUnary(UnaryOp::Plus, loc);
      case TokKind::Minus: ++pos_; return makeUnary(UnaryOp::Neg, loc);
      case TokKind::Not: ++pos_; return makeUnary(UnaryOp::Not, loc);
      case TokKind::Tilde: ++pos_; return makeUnary(UnaryOp::BitNot, loc);
      case TokKind::Star: ++pos_; return makeUnary(UnaryOp::Deref, loc);
      case TokKind::Amp: ++pos_; return makeUnary(UnaryOp::AddrOf, loc);
      case TokKind::PlusPlus: ++pos_; return makeUnary(UnaryOp::PreInc, loc);
      case TokKind::MinusMinus: ++pos_; return makeUnary(UnaryOp::PreDec, loc);
      case TokKind::KwSizeof: {
        ++pos_;
        if (cur().is(TokKind::LParen) && isTypeStart(peek())) {
          ++pos_;
          const Type* type = typeName();
          expect(TokKind::RParen, "after sizeof type");
          Expr* expr = unit_->newExpr(ExprKind::SizeofType, loc);
          expr->writtenType = type;
          return expr;
        }
        Expr* operand = unaryExpr();
        Expr* expr = unit_->newExpr(ExprKind::SizeofType, loc);
        expr->lhs = operand; // sema resolves the operand's type
        return expr;
      }
      case TokKind::LParen:
        if (isTypeStart(peek())) {
          // Cast expression: "(type) unary-expr".
          ++pos_;
          const Type* type = typeName();
          expect(TokKind::RParen, "after cast type");
          Expr* expr = unit_->newExpr(ExprKind::Cast, loc);
          expr->writtenType = type;
          expr->lhs = unaryExpr();
          return expr;
        }
        break;
      default:
        break;
    }
    return postfixExpr();
  }

  Expr* makeUnary(UnaryOp op, SourceLoc loc) {
    Expr* expr = unit_->newExpr(ExprKind::Unary, loc);
    expr->unaryOp = op;
    expr->lhs = unaryExpr();
    return expr;
  }

  /// "type" production used by casts and sizeof: declspec + pointers.
  const Type* typeName() {
    DeclSpec spec = declSpec(/*allowKernel=*/false);
    return pointerDeclarators(spec.baseType, spec.space);
  }

  Expr* postfixExpr() {
    Expr* expr = primaryExpr();
    for (;;) {
      const SourceLoc loc = cur().loc;
      if (accept(TokKind::LBracket)) {
        Expr* index = expression();
        expect(TokKind::RBracket, "after array index");
        Expr* node = unit_->newExpr(ExprKind::Index, loc);
        node->lhs = expr;
        node->rhs = index;
        expr = node;
      } else if (accept(TokKind::Dot)) {
        const Token nameTok = expect(TokKind::Identifier, "after '.'");
        Expr* node = unit_->newExpr(ExprKind::Member, loc);
        node->lhs = expr;
        node->memberName = nameTok.text;
        expr = node;
      } else if (accept(TokKind::Arrow)) {
        const Token nameTok = expect(TokKind::Identifier, "after '->'");
        // p->f is (*p).f
        Expr* deref = unit_->newExpr(ExprKind::Unary, loc);
        deref->unaryOp = UnaryOp::Deref;
        deref->lhs = expr;
        Expr* node = unit_->newExpr(ExprKind::Member, loc);
        node->lhs = deref;
        node->memberName = nameTok.text;
        expr = node;
      } else if (accept(TokKind::PlusPlus)) {
        Expr* node = unit_->newExpr(ExprKind::Unary, loc);
        node->unaryOp = UnaryOp::PostInc;
        node->lhs = expr;
        expr = node;
      } else if (accept(TokKind::MinusMinus)) {
        Expr* node = unit_->newExpr(ExprKind::Unary, loc);
        node->unaryOp = UnaryOp::PostDec;
        node->lhs = expr;
        expr = node;
      } else {
        return expr;
      }
    }
  }

  Expr* primaryExpr() {
    const Token tok = cur();
    switch (tok.kind) {
      case TokKind::IntLiteral: {
        ++pos_;
        Expr* expr = unit_->newExpr(ExprKind::IntLit, tok.loc);
        expr->intValue = tok.intValue;
        // Type per C rules, simplified: suffix-driven, defaults to int
        // (long when the value does not fit).
        ScalarKind kind = ScalarKind::I32;
        if (tok.unsignedSuffix && tok.longSuffix) kind = ScalarKind::U64;
        else if (tok.unsignedSuffix) kind = ScalarKind::U32;
        else if (tok.longSuffix) kind = ScalarKind::I64;
        else if (tok.intValue > 0x7fffffffULL) kind = ScalarKind::I64;
        expr->type = unit_->types().scalar(kind);
        return expr;
      }
      case TokKind::FloatLiteral: {
        ++pos_;
        Expr* expr = unit_->newExpr(ExprKind::FloatLit, tok.loc);
        expr->floatValue = tok.floatValue;
        expr->floatIsDouble = !tok.floatSuffix;
        expr->type = unit_->types().scalar(
            tok.floatSuffix ? ScalarKind::F32 : ScalarKind::F64);
        return expr;
      }
      case TokKind::KwTrue:
      case TokKind::KwFalse: {
        ++pos_;
        Expr* expr = unit_->newExpr(ExprKind::BoolLit, tok.loc);
        expr->intValue = tok.kind == TokKind::KwTrue ? 1 : 0;
        expr->type = unit_->types().boolType();
        return expr;
      }
      case TokKind::Identifier: {
        ++pos_;
        if (cur().is(TokKind::LParen)) {
          // Function call.
          ++pos_;
          Expr* expr = unit_->newExpr(ExprKind::Call, tok.loc);
          expr->name = tok.text;
          if (!cur().is(TokKind::RParen)) {
            for (;;) {
              expr->args.push_back(assignmentExpr());
              if (!accept(TokKind::Comma)) {
                break;
              }
            }
          }
          expect(TokKind::RParen, "after call arguments");
          return expr;
        }
        Expr* expr = unit_->newExpr(ExprKind::VarRef, tok.loc);
        expr->name = tok.text;
        return expr;
      }
      case TokKind::LParen: {
        ++pos_;
        Expr* expr = expression();
        expect(TokKind::RParen, "after parenthesized expression");
        return expr;
      }
      default:
        fail("expected an expression, found " + describe(tok));
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<TranslationUnit> unit_;
  std::unordered_map<std::string, const Type*> typedefs_;
  int anonId_ = 0;
};

} // namespace

std::unique_ptr<TranslationUnit> parse(const std::string& source) {
  return Parser(source).run();
}

} // namespace clc
