#include "clc/opt.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "clc/builtins.h"
#include "clc/eval.h"
#include "clc/vm.h"

namespace clc {
namespace {

using namespace eval;

constexpr Instr kNop{Op::Nop, TypeTag::I32, 0};

// ---------------------------------------------------------------------------
// Shared analyses
// ---------------------------------------------------------------------------

/// Reachable instructions, per function, by DFS over fall-through and jump
/// edges. Instructions outside every function region are conservatively
/// treated as reachable.
std::vector<bool> computeReachable(const Program& p) {
  const std::size_t n = p.code.size();
  std::vector<bool> covered(n, false);
  std::vector<bool> reach(n, false);
  std::vector<std::uint32_t> work;
  for (const FunctionInfo& f : p.functions) {
    const std::size_t end = std::min<std::size_t>(f.codeEnd, n);
    for (std::size_t pc = f.codeStart; pc < end; ++pc) {
      covered[pc] = true;
    }
    if (f.codeStart >= end) {
      continue;
    }
    work.clear();
    reach[f.codeStart] = true;
    work.push_back(f.codeStart);
    auto visit = [&](std::int64_t t) {
      if (t >= std::int64_t(f.codeStart) && t < std::int64_t(end) &&
          !reach[std::size_t(t)]) {
        reach[std::size_t(t)] = true;
        work.push_back(std::uint32_t(t));
      }
    };
    while (!work.empty()) {
      const std::uint32_t pc = work.back();
      work.pop_back();
      const Instr& in = p.code[pc];
      switch (in.op) {
        case Op::Jmp:
          visit(in.a);
          break;
        case Op::Jz:
        case Op::Jnz:
          visit(in.a);
          visit(pc + 1);
          break;
        case Op::CmpJz:
        case Op::CmpJnz:
          visit(cmpJumpTarget(in.a));
          visit(pc + 1);
          break;
        case Op::Ret:
        case Op::RetVal:
        case Op::RetStruct:
        case Op::Trap:
          break;
        default:
          visit(pc + 1);
          break;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!covered[i]) {
      reach[i] = true;
    }
  }
  return reach;
}

/// Basic-block leaders: function entries and jump targets. When `reachable`
/// is given, targets of unreachable jumps are ignored.
std::vector<bool> computeLeaders(const Program& p,
                                 const std::vector<bool>* reachable) {
  const std::size_t n = p.code.size();
  std::vector<bool> lead(n, false);
  for (const FunctionInfo& f : p.functions) {
    if (f.codeStart < n) {
      lead[f.codeStart] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (reachable && !(*reachable)[i]) {
      continue;
    }
    const Instr& in = p.code[i];
    std::int64_t t = -1;
    switch (in.op) {
      case Op::Jmp:
      case Op::Jz:
      case Op::Jnz:
        t = in.a;
        break;
      case Op::CmpJz:
      case Op::CmpJnz:
        t = cmpJumpTarget(in.a);
        break;
      default:
        break;
    }
    if (t >= 0 && std::size_t(t) < n) {
      lead[std::size_t(t)] = true;
    }
  }
  return lead;
}

/// Net operand-stack effect of one instruction when statically known.
/// Returns false for control transfers, barriers, and anything else a
/// straight-line region scan must not step over.
bool stackEffect(const Program& p, const Instr& in, int& pops, int& pushes) {
  switch (in.op) {
    case Op::Nop: pops = 0; pushes = 0; return true;
    case Op::PushConst:
    case Op::PushFrameAddr:
    case Op::PushLocalAddr:
    case Op::LoadFrame:
    case Op::FrameBin2: pops = 0; pushes = 1; return true;
    case Op::Dup: pops = 1; pushes = 2; return true;
    case Op::Pop: pops = 1; pushes = 0; return true;
    case Op::Swap: pops = 2; pushes = 2; return true;
    case Op::Rot3: pops = 3; pushes = 3; return true;
    case Op::Load: pops = 1; pushes = 1; return true;
    case Op::Store:
    case Op::MemCopy: pops = 2; pushes = 0; return true;
    case Op::StoreKeep: pops = 2; pushes = 1; return true;
    case Op::StoreFrame: pops = 1; pushes = 0; return true;
    case Op::Neg:
    case Op::BitNot:
    case Op::LogNot:
    case Op::Conv:
    case Op::BinConst:
    case Op::FrameBin: pops = 1; pushes = 1; return true;
    case Op::LoadBin: pops = 2; pushes = 1; return true;
    case Op::MulAdd: pops = 3; pushes = 1; return true;
    case Op::Call: {
      if (std::size_t(in.a) >= p.functions.size()) {
        return false;
      }
      const FunctionInfo& f = p.functions[std::size_t(in.a)];
      pops = int(f.params.size()) + (f.returnsStruct ? 1 : 0);
      pushes = f.returnsValue ? 1 : 0;
      return true;
    }
    case Op::CallBuiltin: {
      const Builtin b = Builtin(in.a);
      if (b == Builtin::Barrier) {
        return false;
      }
      pops = builtinArity(b);
      pushes = 1;
      return true;
    }
    default:
      if (isBinaryArithOp(in.op) || isCompareOp(in.op)) {
        pops = 2;
        pushes = 1;
        return true;
      }
      return false;
  }
}

std::int32_t internConst(Program& p, std::uint64_t v) {
  for (std::size_t i = 0; i < p.constants.size(); ++i) {
    if (p.constants[i] == v) {
      return std::int32_t(i);
    }
  }
  p.constants.push_back(v);
  return std::int32_t(p.constants.size() - 1);
}

/// The slot a frame Load would produce after a Store of slot `v` with the
/// same tag: memcpy of the low typeTagSize bytes, then canonicalization.
std::uint64_t frameRoundTrip(std::uint64_t v, TypeTag tag) {
  const std::size_t size = typeTagSize(tag);
  const std::uint64_t masked =
      size == 8 ? v : (v & ((1ULL << (8 * size)) - 1));
  return canon(masked, tag);
}

// ---------------------------------------------------------------------------
// Pass 1: symbolic per-block stack simulation
// ---------------------------------------------------------------------------
//
// Models the top of the operand stack through each basic block. An entry is
// "owning" (producer >= 0) when the tracked value is consumed exactly once
// and the producing push can still be deleted; Dup/Swap/Rot3 strip
// ownership because deleting the producer would change what they shuffle.
// The model resets at every leader, which automatically confines each
// rewrite to one straight-line region with a single execution count — the
// property the cycle-cost transfers below rely on.

struct SimEntry {
  enum class Kind : std::uint8_t { Unknown, Const, FrameAddr };
  Kind kind = Kind::Unknown;
  std::uint64_t value = 0;   // Const: slot value; FrameAddr: byte offset
  std::int32_t producer = -1;
};

/// Integer identities restricted to 64-bit tags, where canonicalization is
/// the identity and x op k == x holds slot-exactly. Narrower tags would
/// need the lhs slot to be proven canonical; floats are excluded because
/// x*1.0 may quiet a signalling NaN payload on the host.
bool isIdentityRhs(Op op, TypeTag tag, std::uint64_t rhs) {
  if (isFloatTag(tag) || tagBits(tag) != 64) {
    return false;
  }
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Shl:
    case Op::Shr:
    case Op::BitOr:
    case Op::BitXor:
      return rhs == 0;
    case Op::Mul:
    case Op::Div:
      return rhs == 1;
    case Op::BitAnd:
      return rhs == ~0ULL;
    default:
      return false;
  }
}

void simFunction(Program& p, const FunctionInfo& f, const OptOptions& opts,
                 std::vector<std::uint32_t>& costs,
                 const std::vector<bool>& lead, OptStats& stats) {
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  std::vector<SimEntry> sim;
  struct FrameConst {
    std::uint32_t off;
    TypeTag tag;
    std::uint64_t value;
  };
  std::vector<FrameConst> fc;

  auto pop1 = [&]() -> SimEntry {
    if (sim.empty()) {
      return SimEntry{};
    }
    SimEntry e = sim.back();
    sim.pop_back();
    return e;
  };
  auto pushU = [&] { sim.push_back(SimEntry{}); };
  auto pushE = [&](SimEntry::Kind k, std::uint64_t v, std::int32_t prod) {
    sim.push_back(SimEntry{k, v, prod});
  };
  // Pads the modeled suffix with Unknowns so shuffles can be applied; the
  // real stack is at least this deep or the program traps anyway.
  auto ensure = [&](std::size_t d) {
    while (sim.size() < d) {
      sim.insert(sim.begin(), SimEntry{});
    }
  };
  auto clearAll = [&] {
    sim.clear();
    fc.clear();
  };
  auto invalidateFrame = [&](std::uint64_t off, std::size_t size) {
    fc.erase(std::remove_if(fc.begin(), fc.end(),
                            [&](const FrameConst& c) {
                              return off < c.off + typeTagSize(c.tag) &&
                                     std::uint64_t(c.off) < off + size;
                            }),
             fc.end());
  };
  auto findFrameConst = [&](std::uint64_t off,
                            TypeTag tag) -> const FrameConst* {
    for (const FrameConst& c : fc) {
      if (c.off == off && c.tag == tag) {
        return &c;
      }
    }
    return nullptr;
  };
  // Deletes the producing push, moving its cycles onto the instruction at
  // `into` (same basic block, same execution count: timing-invariant).
  auto nopOut = [&](std::int32_t producer, std::size_t into) {
    p.code[std::size_t(producer)] = kNop;
    costs[into] += costs[std::size_t(producer)];
    costs[std::size_t(producer)] = 0;
  };

  for (std::size_t pc = f.codeStart; pc < end; ++pc) {
    if (lead[pc]) {
      clearAll();
    }
    Instr& in = p.code[pc];
    if (isBinaryArithOp(in.op)) {
      const SimEntry rhs = pop1();
      const SimEntry lhs = pop1();
      if (opts.constantFolding && lhs.kind == SimEntry::Kind::Const &&
          rhs.kind == SimEntry::Kind::Const && lhs.producer >= 0 &&
          rhs.producer >= 0) {
        std::uint64_t out = 0;
        if (evalArith(in.op, in.tag, lhs.value, rhs.value, out) ==
            EvalStatus::Ok) {
          nopOut(lhs.producer, pc);
          nopOut(rhs.producer, pc);
          in = Instr{Op::PushConst, in.tag, internConst(p, out)};
          pushE(SimEntry::Kind::Const, out, std::int32_t(pc));
          ++stats.foldedInstrs;
          continue;
        }
      }
      if (opts.algebraic && rhs.kind == SimEntry::Kind::Const &&
          rhs.producer >= 0) {
        if (isIdentityRhs(in.op, in.tag, rhs.value)) {
          // x op k == x: drop the push and the op; their cycles ride on
          // the Nops until compaction re-homes them.
          p.code[std::size_t(rhs.producer)] = kNop;
          in = kNop;
          sim.push_back(lhs);
          ++stats.simplifiedInstrs;
          continue;
        }
        if (!isFloatTag(in.tag) && rhs.value > 1 &&
            (rhs.value & (rhs.value - 1)) == 0) {
          std::uint32_t sh = 0;
          while ((1ULL << sh) != rhs.value) {
            ++sh;
          }
          if (sh < tagBits(in.tag)) {
            // Power-of-two strength reduction. The cost table keeps the
            // original op's (higher) cycle charge.
            if (in.op == Op::Mul) {
              p.code[std::size_t(rhs.producer)].a = internConst(p, sh);
              in.op = Op::Shl;
              pushU();
              ++stats.simplifiedInstrs;
              continue;
            }
            if ((in.op == Op::Div || in.op == Op::Rem) &&
                !isSignedTag(in.tag)) {
              p.code[std::size_t(rhs.producer)].a = internConst(
                  p, in.op == Op::Div ? std::uint64_t(sh) : rhs.value - 1);
              in.op = in.op == Op::Div ? Op::Shr : Op::BitAnd;
              pushU();
              ++stats.simplifiedInstrs;
              continue;
            }
          }
        }
      }
      pushU();
      continue;
    }
    if (isCompareOp(in.op)) {
      const SimEntry rhs = pop1();
      const SimEntry lhs = pop1();
      if (opts.constantFolding && lhs.kind == SimEntry::Kind::Const &&
          rhs.kind == SimEntry::Kind::Const && lhs.producer >= 0 &&
          rhs.producer >= 0) {
        bool hit = false;
        if (evalCompare(in.op, in.tag, lhs.value, rhs.value, hit) ==
            EvalStatus::Ok) {
          nopOut(lhs.producer, pc);
          nopOut(rhs.producer, pc);
          const std::uint64_t out = hit ? 1 : 0;
          in = Instr{Op::PushConst, TypeTag::I32, internConst(p, out)};
          pushE(SimEntry::Kind::Const, out, std::int32_t(pc));
          ++stats.foldedInstrs;
          continue;
        }
      }
      pushU();
      continue;
    }
    switch (in.op) {
      case Op::Nop:
        break;
      case Op::PushConst:
        if (std::size_t(in.a) < p.constants.size()) {
          pushE(SimEntry::Kind::Const, p.constants[std::size_t(in.a)],
                std::int32_t(pc));
        } else {
          pushU();
        }
        break;
      case Op::PushFrameAddr:
        if (in.a >= 0) {
          pushE(SimEntry::Kind::FrameAddr, std::uint64_t(in.a),
                std::int32_t(pc));
        } else {
          pushU();
        }
        break;
      case Op::PushLocalAddr:
        pushU();
        break;
      case Op::Dup: {
        ensure(1);
        sim.back().producer = -1; // the value now has two consumers
        sim.push_back(sim.back());
        break;
      }
      case Op::Pop:
        pop1();
        break;
      case Op::Swap:
        ensure(2);
        std::swap(sim[sim.size() - 1], sim[sim.size() - 2]);
        sim[sim.size() - 1].producer = -1;
        sim[sim.size() - 2].producer = -1;
        break;
      case Op::Rot3: {
        ensure(3);
        const SimEntry a = sim[sim.size() - 3];
        sim[sim.size() - 3] = sim[sim.size() - 2];
        sim[sim.size() - 2] = sim[sim.size() - 1];
        sim[sim.size() - 1] = a;
        for (std::size_t k = 1; k <= 3; ++k) {
          sim[sim.size() - k].producer = -1;
        }
        break;
      }
      case Op::Load: {
        const SimEntry addr = pop1();
        if (addr.kind == SimEntry::Kind::FrameAddr) {
          if (const FrameConst* c = findFrameConst(addr.value, in.tag)) {
            if (opts.constantFolding && addr.producer >= 0) {
              nopOut(addr.producer, pc);
              in = Instr{Op::PushConst, in.tag, internConst(p, c->value)};
              pushE(SimEntry::Kind::Const, c->value, std::int32_t(pc));
              ++stats.propagatedLoads;
            } else {
              pushE(SimEntry::Kind::Const, c->value, -1);
            }
            break;
          }
        }
        pushU();
        break;
      }
      case Op::Store:
      case Op::StoreKeep: {
        SimEntry val = pop1();
        const SimEntry addr = pop1();
        if (addr.kind == SimEntry::Kind::FrameAddr) {
          invalidateFrame(addr.value, typeTagSize(in.tag));
          if (val.kind == SimEntry::Kind::Const) {
            fc.push_back(FrameConst{std::uint32_t(addr.value), in.tag,
                                    frameRoundTrip(val.value, in.tag)});
          }
        } else {
          fc.clear(); // an unknown pointer may alias the frame
        }
        if (in.op == Op::StoreKeep) {
          val.producer = -1;
          sim.push_back(val);
        }
        break;
      }
      case Op::MemCopy:
        pop1();
        pop1();
        fc.clear();
        break;
      case Op::Neg:
      case Op::BitNot:
      case Op::LogNot: {
        const SimEntry v = pop1();
        if (opts.constantFolding && v.kind == SimEntry::Kind::Const &&
            v.producer >= 0) {
          const std::uint64_t out =
              in.op == Op::Neg    ? evalNeg(in.tag, v.value)
              : in.op == Op::BitNot ? canon(~v.value, in.tag)
                                    : (v.value == 0 ? 1 : 0);
          nopOut(v.producer, pc);
          in = Instr{Op::PushConst, in.tag, internConst(p, out)};
          pushE(SimEntry::Kind::Const, out, std::int32_t(pc));
          ++stats.foldedInstrs;
        } else {
          pushU();
        }
        break;
      }
      case Op::Conv: {
        const SimEntry v = pop1();
        const auto from = TypeTag((in.a >> 8) & 0xff);
        const auto to = TypeTag(in.a & 0xff);
        if (opts.constantFolding && v.kind == SimEntry::Kind::Const &&
            v.producer >= 0) {
          const std::uint64_t out = convert(v.value, from, to);
          nopOut(v.producer, pc);
          in = Instr{Op::PushConst, to, internConst(p, out)};
          pushE(SimEntry::Kind::Const, out, std::int32_t(pc));
          ++stats.foldedInstrs;
        } else {
          pushU();
        }
        break;
      }
      case Op::Jz:
      case Op::Jnz: {
        const SimEntry cond = pop1();
        if (opts.constantFolding && cond.kind == SimEntry::Kind::Const) {
          const bool taken = (in.op == Op::Jz) == (cond.value == 0);
          if (cond.producer >= 0) {
            nopOut(cond.producer, pc);
            in = taken ? Instr{Op::Jmp, in.tag, in.a} : kNop;
            ++stats.foldedBranches;
          } else if (!taken) {
            in = Instr{Op::Pop, in.tag, 0}; // still must drop the condition
            ++stats.foldedBranches;
          }
        }
        clearAll();
        break;
      }
      case Op::Call: {
        if (std::size_t(in.a) < p.functions.size()) {
          const FunctionInfo& callee = p.functions[std::size_t(in.a)];
          for (std::size_t k = 0; k < callee.params.size(); ++k) {
            pop1();
          }
          if (callee.returnsStruct) {
            pop1();
          }
          if (callee.returnsValue) {
            pushU();
          }
          fc.clear(); // the callee may write through a passed frame pointer
        } else {
          clearAll();
        }
        break;
      }
      case Op::CallBuiltin: {
        const Builtin b = Builtin(in.a);
        if (b == Builtin::Barrier) {
          clearAll();
          break;
        }
        for (std::uint8_t k = 0; k < builtinArity(b); ++k) {
          pop1();
        }
        pushU();
        if (b >= Builtin::AtomicAdd && b <= Builtin::AtomicAddFloat) {
          fc.clear(); // atomics can target the frame via escaped pointers
        }
        break;
      }
      default:
        // Control flow, barriers, superinstructions: end of the modeled
        // region.
        clearAll();
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Pattern passes
// ---------------------------------------------------------------------------

/// Drops the `!= 0` normalization codegen appends to conditions that are
/// already 0/1: [cmp/log_not, push_const 0, cmp_ne] -> [cmp/log_not].
void condNormFunction(Program& p, const FunctionInfo& f,
                      const std::vector<bool>& lead, OptStats& stats) {
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  for (std::size_t i = f.codeStart; i + 2 < end; ++i) {
    const Instr& a = p.code[i];
    const Instr& b = p.code[i + 1];
    const Instr& c = p.code[i + 2];
    if (!(isCompareOp(a.op) || a.op == Op::LogNot)) {
      continue;
    }
    if (b.op != Op::PushConst || c.op != Op::CmpNe || isFloatTag(c.tag)) {
      continue;
    }
    if (lead[i + 1] || lead[i + 2]) {
      continue;
    }
    if (std::size_t(b.a) >= p.constants.size() ||
        p.constants[std::size_t(b.a)] != 0) {
      continue;
    }
    p.code[i + 1] = kNop;
    p.code[i + 2] = kNop;
    ++stats.simplifiedInstrs;
  }
}

/// Removes [side-effect-free push, Pop] pairs.
void pushPopFunction(Program& p, const FunctionInfo& f,
                     const std::vector<bool>& lead) {
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  for (std::size_t i = f.codeStart; i + 1 < end; ++i) {
    const Op op = p.code[i].op;
    if (op != Op::PushConst && op != Op::PushFrameAddr &&
        op != Op::PushLocalAddr && op != Op::Dup && op != Op::LoadFrame) {
      continue;
    }
    if (p.code[i + 1].op != Op::Pop || lead[i + 1]) {
      continue;
    }
    p.code[i] = kNop;
    p.code[i + 1] = kNop;
    ++i;
  }
}

/// Turns frame stores into pops when the stored slot is provably never
/// read again: the function has no PushFrameAddr left (so the frame cannot
/// be aliased by a pointer), and no LoadFrame/FrameBin/FrameBin2 reads
/// overlap the stored range. Only effective after fusion has rewritten
/// frame accesses.
void deadStoreFunction(Program& p, const FunctionInfo& f, OptStats& stats) {
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  for (std::size_t i = f.codeStart; i < end; ++i) {
    if (p.code[i].op == Op::PushFrameAddr) {
      return;
    }
  }
  struct Range {
    std::uint64_t lo, hi;
  };
  std::vector<Range> reads;
  if (f.returnsStruct) {
    reads.push_back({0, 8}); // sret slot, read by RetStruct
  }
  for (std::size_t i = f.codeStart; i < end; ++i) {
    const Instr& in = p.code[i];
    if (in.op == Op::LoadFrame) {
      reads.push_back({std::uint64_t(in.a),
                       std::uint64_t(in.a) + typeTagSize(in.tag)});
    } else if (in.op == Op::FrameBin) {
      reads.push_back({std::uint64_t(embeddedOperand(in.a)),
                       std::uint64_t(embeddedOperand(in.a)) +
                           typeTagSize(in.tag)});
    } else if (in.op == Op::FrameBin2) {
      reads.push_back({std::uint64_t(frame2X(in.a)),
                       std::uint64_t(frame2X(in.a)) + typeTagSize(in.tag)});
      reads.push_back({std::uint64_t(frame2Y(in.a)),
                       std::uint64_t(frame2Y(in.a)) + typeTagSize(in.tag)});
    }
  }
  for (std::size_t i = f.codeStart; i < end; ++i) {
    Instr& in = p.code[i];
    if (in.op != Op::StoreFrame) {
      continue;
    }
    const std::uint64_t lo = std::uint64_t(in.a);
    const std::uint64_t hi = lo + typeTagSize(in.tag);
    bool live = false;
    for (const Range& r : reads) {
      if (lo < r.hi && r.lo < hi) {
        live = true;
        break;
      }
    }
    if (!live) {
      in = Instr{Op::Pop, in.tag, 0}; // keeps the store's cycle charge
      ++stats.deadStores;
    }
  }
}

// ---------------------------------------------------------------------------
// Fusion
// ---------------------------------------------------------------------------

bool fuseFunction(Program& p, const FunctionInfo& f,
                  std::vector<std::uint32_t>& costs,
                  const std::vector<bool>& lead, OptStats& stats) {
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  bool changed = false;

  // Folds instruction `from` into `into`: `into` inherits its cycles so
  // the fused instruction is charged exactly the sequence it replaces.
  auto mergeInto = [&](std::size_t from, std::size_t into) {
    costs[into] += costs[from];
    costs[from] = 0;
    p.code[from] = kNop;
    ++stats.fusedInstrs;
    changed = true;
  };

  // [PushFrameAddr, <region of net +1 that never touches the address
  // slot>, Store] -> [<region>, StoreFrame]. The scan tracks the number of
  // stack slots above the pushed address; any instruction that would reach
  // the address slot, has unknown stack effect, or sits at a leader aborts.
  auto tryStoreRewrite = [&](std::size_t i) {
    const Instr pfa = p.code[i];
    int depth = 0;
    for (std::size_t j = i + 1; j < end && j < i + 64; ++j) {
      if (lead[j]) {
        return false;
      }
      const Instr& rj = p.code[j];
      if (rj.op == Op::Store && depth == 1) {
        if (std::uint64_t(pfa.a) + typeTagSize(rj.tag) > f.frameSize) {
          return false;
        }
        p.code[j] = Instr{Op::StoreFrame, rj.tag, pfa.a};
        costs[j] += costs[i];
        costs[i] = 0;
        p.code[i] = kNop;
        ++stats.fusedInstrs;
        changed = true;
        return true;
      }
      int pops = 0;
      int pushes = 0;
      if (!stackEffect(p, rj, pops, pushes) || pops > depth) {
        return false;
      }
      depth += pushes - pops;
    }
    return false;
  };

  // [PushFrameAddr, Dup, Load, <region>, Store] (the ++/--/compound-assign
  // idiom) -> [LoadFrame, <region>, StoreFrame].
  auto tryIncIdiom = [&](std::size_t i) {
    const Instr pfa = p.code[i];
    if (i + 3 >= end || lead[i + 1] || lead[i + 2]) {
      return false;
    }
    if (p.code[i + 1].op != Op::Dup || p.code[i + 2].op != Op::Load) {
      return false;
    }
    const TypeTag lt = p.code[i + 2].tag;
    if (std::uint64_t(pfa.a) + typeTagSize(lt) > f.frameSize) {
      return false;
    }
    int depth = 1; // the loaded old value sits above the address slot
    for (std::size_t j = i + 3; j < end && j < i + 64; ++j) {
      if (lead[j]) {
        return false;
      }
      const Instr& rj = p.code[j];
      if (rj.op == Op::Store && depth == 1) {
        if (std::uint64_t(pfa.a) + typeTagSize(rj.tag) > f.frameSize) {
          return false;
        }
        p.code[i] = Instr{Op::LoadFrame, lt, pfa.a};
        costs[i] += costs[i + 1] + costs[i + 2];
        costs[i + 1] = 0;
        costs[i + 2] = 0;
        p.code[i + 1] = kNop;
        p.code[i + 2] = kNop;
        p.code[j] = Instr{Op::StoreFrame, rj.tag, pfa.a};
        stats.fusedInstrs += 2;
        changed = true;
        return true;
      }
      int pops = 0;
      int pushes = 0;
      if (!stackEffect(p, rj, pops, pushes) || pops > depth) {
        return false;
      }
      depth += pushes - pops;
    }
    return false;
  };

  // A compare feeding a conditional jump fuses to CmpJz/CmpJnz; skip
  // embedding such a compare into BinConst/FrameBin.
  auto cmpFeedsJump = [&](std::size_t i, Op op) {
    return isCompareOp(op) && i + 2 < end && !lead[i + 2] &&
           (p.code[i + 2].op == Op::Jz || p.code[i + 2].op == Op::Jnz);
  };

  for (std::size_t i = f.codeStart; i < end; ++i) {
    Instr& in = p.code[i];
    if (isCompareOp(in.op)) {
      if (i + 1 < end && !lead[i + 1] &&
          (p.code[i + 1].op == Op::Jz || p.code[i + 1].op == Op::Jnz)) {
        const std::int32_t t = p.code[i + 1].a;
        if (t >= 0 && t <= kCmpJumpTargetMask) {
          const bool jnz = p.code[i + 1].op == Op::Jnz;
          in = Instr{jnz ? Op::CmpJnz : Op::CmpJz, in.tag,
                     encodeCmpJump(in.op, t)};
          mergeInto(i + 1, i);
        }
      }
      continue;
    }
    switch (in.op) {
      case Op::PushFrameAddr: {
        if (in.a < 0) {
          break;
        }
        if (tryStoreRewrite(i) || tryIncIdiom(i)) {
          break;
        }
        if (i + 1 < end && !lead[i + 1] && p.code[i + 1].op == Op::Load) {
          const TypeTag t = p.code[i + 1].tag;
          if (std::uint64_t(in.a) + typeTagSize(t) <= f.frameSize) {
            in = Instr{Op::LoadFrame, t, in.a};
            mergeInto(i + 1, i);
          }
        }
        break;
      }
      case Op::PushConst: {
        if (i + 1 >= end || lead[i + 1] || in.a < 0 ||
            in.a > kEmbedOperandMask) {
          break;
        }
        const Instr& nx = p.code[i + 1];
        if (!(isBinaryArithOp(nx.op) || isCompareOp(nx.op)) ||
            cmpFeedsJump(i, nx.op)) {
          break;
        }
        in = Instr{Op::BinConst, nx.tag, encodeEmbedOp(nx.op, in.a)};
        mergeInto(i + 1, i);
        break;
      }
      case Op::LoadFrame: {
        if (i + 1 >= end || lead[i + 1] || in.a < 0) {
          break;
        }
        const Instr& nx = p.code[i + 1];
        // Cascade: [LoadFrame x, FrameBin op y] -> FrameBin2, both
        // operands straight from the frame.
        if (nx.op == Op::FrameBin && nx.tag == in.tag &&
            in.a <= kFrame2OffsetMask &&
            embeddedOperand(nx.a) <= kFrame2OffsetMask) {
          in = Instr{Op::FrameBin2, in.tag,
                     encodeFrame2(embeddedOp(nx.a), in.a,
                                  embeddedOperand(nx.a))};
          mergeInto(i + 1, i);
          break;
        }
        if (in.a > kEmbedOperandMask ||
            !(isBinaryArithOp(nx.op) || isCompareOp(nx.op)) ||
            nx.tag != in.tag || cmpFeedsJump(i, nx.op)) {
          break;
        }
        in = Instr{Op::FrameBin, in.tag, encodeEmbedOp(nx.op, in.a)};
        mergeInto(i + 1, i);
        break;
      }
      case Op::Load: {
        if (i + 1 >= end || lead[i + 1]) {
          break;
        }
        const Instr& nx = p.code[i + 1];
        if (!(isBinaryArithOp(nx.op) || isCompareOp(nx.op)) ||
            nx.tag != in.tag || cmpFeedsJump(i, nx.op)) {
          break;
        }
        in = Instr{Op::LoadBin, in.tag, std::int32_t(nx.op)};
        mergeInto(i + 1, i);
        break;
      }
      case Op::Mul: {
        if (i + 1 >= end || lead[i + 1] || p.code[i + 1].op != Op::Add) {
          break;
        }
        const TypeTag mt = in.tag;
        const TypeTag at = p.code[i + 1].tag;
        // Exact when the tags agree, or when both are 64-bit integer tags
        // (wrapping arithmetic is tag-independent at full width).
        const bool ok = mt == at || (!isFloatTag(mt) && !isFloatTag(at) &&
                                     tagBits(mt) == 64 && tagBits(at) == 64);
        if (!ok) {
          break;
        }
        in = Instr{Op::MulAdd, at, 0};
        mergeInto(i + 1, i);
        break;
      }
      default:
        break;
    }
  }
  return changed;
}

/// Threads a [PushConst K] that flows — through an unconditional Jmp or by
/// falling into a leader — straight into a [PushConst C, CmpJz/CmpJnz]
/// block head: the compare's outcome is known, so the whole path collapses
/// into one Jmp charged the cycles of every instruction it skips. The
/// skipped head keeps its own costs for its other predecessors; the static
/// table total grows by the copy, but each execution path's cycle count is
/// exactly preserved, which is the invariant that matters. This collapses
/// the diamonds codegen emits for `&&`/`||`. Orphaned heads are dropped
/// cost-free as unreachable at the next compaction.
bool threadFunction(Program& p, const FunctionInfo& f,
                    std::vector<std::uint32_t>& costs,
                    const std::vector<bool>& lead, OptStats& stats) {
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  bool changed = false;
  // Targets of Jmps created in this very pass: they become leaders only at
  // the next computeLeaders, but must already block rewrites that assume
  // no mid-block entry (e.g. Nopping a newly targeted Jmp).
  std::vector<bool> newLead(p.code.size(), false);
  for (std::size_t i = f.codeStart; i + 1 < end; ++i) {
    const Instr in = p.code[i];
    if (in.op != Op::PushConst || in.a < 0 ||
        std::size_t(in.a) >= p.constants.size()) {
      continue;
    }
    // Where does control go with the constant on top of the stack?
    std::size_t head = 0;
    bool viaJmp = false;
    if (p.code[i + 1].op == Op::Jmp && !lead[i + 1] && !newLead[i + 1] &&
        p.code[i + 1].a >= 0) {
      head = std::size_t(p.code[i + 1].a);
      viaJmp = true;
    } else if (lead[i + 1] || newLead[i + 1]) {
      head = i + 1;
    } else {
      continue;
    }
    if (head < f.codeStart || head + 1 >= end || lead[head + 1] ||
        newLead[head + 1]) {
      continue;
    }
    const Instr& hc = p.code[head];
    const Instr& hj = p.code[head + 1];
    if (hc.op != Op::PushConst || hc.a < 0 ||
        std::size_t(hc.a) >= p.constants.size()) {
      continue;
    }
    if (hj.op != Op::CmpJz && hj.op != Op::CmpJnz) {
      continue;
    }
    bool hit = false;
    if (evalCompare(cmpFromJump(hj.a), hj.tag,
                    p.constants[std::size_t(in.a)],
                    p.constants[std::size_t(hc.a)], hit) != EvalStatus::Ok) {
      continue;
    }
    const bool jump = hit == (hj.op == Op::CmpJnz);
    const std::int32_t target =
        jump ? cmpJumpTarget(hj.a) : std::int32_t(head + 2);
    // The new Jmp is charged everything the threaded path used to run.
    std::uint32_t cost = costs[i] + costs[head] + costs[head + 1];
    if (viaJmp) {
      cost += costs[i + 1];
      costs[i + 1] = 0;
      p.code[i + 1] = kNop;
    }
    p.code[i] = Instr{Op::Jmp, TypeTag::I32, target};
    costs[i] = cost;
    if (target >= 0 && std::size_t(target) < p.code.size()) {
      newLead[std::size_t(target)] = true;
    }
    ++stats.foldedBranches;
    changed = true;
  }
  return changed;
}

/// True when `in` provably leaves a value on top of the stack that is
/// already canonical for `tag` — i.e. a StoreFrame/LoadFrame round-trip
/// with that tag would reproduce it bit-exactly.
bool producesCanonical(const Program& p, const Instr& in, TypeTag tag) {
  if (isBinaryArithOp(in.op) || in.op == Op::Neg || in.op == Op::BitNot) {
    return in.tag == tag;
  }
  switch (in.op) {
    case Op::Load:
    case Op::LoadFrame:
    case Op::MulAdd:
      return in.tag == tag;
    case Op::BinConst:
    case Op::FrameBin:
      return in.tag == tag && !isCompareOp(embeddedOp(in.a));
    case Op::LoadBin:
      return in.tag == tag && !isCompareOp(Op(in.a));
    case Op::FrameBin2:
      return in.tag == tag && !isCompareOp(frame2Op(in.a));
    case Op::Conv:
      return TypeTag(in.a & 0xff) == tag;
    case Op::PushConst:
      return std::size_t(in.a) < p.constants.size() &&
             p.constants[std::size_t(in.a)] ==
                 frameRoundTrip(p.constants[std::size_t(in.a)], tag);
    default:
      return false;
  }
}

/// Keeps a value on the operand stack instead of spilling it through a
/// frame slot: [StoreFrame x, <region>, LoadFrame x] -> both Nops, when
/// the slot is written and read nowhere else, the frame is never
/// address-taken (no PushFrameAddr, so no pointer can alias it), the
/// straight-line region leaves the stored value undisturbed, and the
/// producer pushed an already-canonical value (so skipping the round-trip
/// is bit-exact). The pair's cycles stay on the Nops and re-home onto the
/// next same-block instruction at compaction.
bool forwardFunction(Program& p, const FunctionInfo& f,
                     std::vector<std::uint32_t>& costs,
                     const std::vector<bool>& lead, OptStats& stats) {
  (void)costs; // the Nops keep their charge; compact() re-homes it
  const std::size_t end = std::min<std::size_t>(f.codeEnd, p.code.size());
  for (std::size_t i = f.codeStart; i < end; ++i) {
    if (p.code[i].op == Op::PushFrameAddr) {
      return false;
    }
  }
  bool changed = false;
  for (std::size_t i = f.codeStart; i < end; ++i) {
    const Instr st = p.code[i];
    if (st.op != Op::StoreFrame) {
      continue;
    }
    const std::uint64_t lo = std::uint64_t(st.a);
    const std::uint64_t hi = lo + typeTagSize(st.tag);
    if (f.returnsStruct && lo < 8) {
      continue; // sret slot, read implicitly by RetStruct
    }
    if (i == f.codeStart || lead[i] ||
        !producesCanonical(p, p.code[i - 1], st.tag)) {
      continue;
    }
    // Exactly one read — a same-tag LoadFrame of the same offset — and no
    // other write may touch the slot anywhere in the function.
    std::size_t read = 0;
    int nreads = 0;
    bool clean = true;
    auto overlaps = [&](std::uint64_t l, std::uint64_t h) {
      return lo < h && l < hi;
    };
    for (std::size_t j = f.codeStart; j < end && clean; ++j) {
      if (j == i) {
        continue;
      }
      const Instr& c = p.code[j];
      switch (c.op) {
        case Op::LoadFrame:
          if (overlaps(std::uint64_t(c.a),
                       std::uint64_t(c.a) + typeTagSize(c.tag))) {
            ++nreads;
            if (nreads == 1 && c.tag == st.tag && std::uint64_t(c.a) == lo) {
              read = j;
            } else {
              clean = false;
            }
          }
          break;
        case Op::StoreFrame:
          if (overlaps(std::uint64_t(c.a),
                       std::uint64_t(c.a) + typeTagSize(c.tag))) {
            clean = false;
          }
          break;
        case Op::FrameBin:
          if (overlaps(std::uint64_t(embeddedOperand(c.a)),
                       std::uint64_t(embeddedOperand(c.a)) +
                           typeTagSize(c.tag))) {
            clean = false;
          }
          break;
        case Op::FrameBin2:
          if (overlaps(std::uint64_t(frame2X(c.a)),
                       std::uint64_t(frame2X(c.a)) + typeTagSize(c.tag)) ||
              overlaps(std::uint64_t(frame2Y(c.a)),
                       std::uint64_t(frame2Y(c.a)) + typeTagSize(c.tag))) {
            clean = false;
          }
          break;
        default:
          break;
      }
    }
    if (!clean || nreads != 1 || read <= i || lead[read]) {
      continue;
    }
    // Reaching the read means having just run the store (same block), so
    // the region between must be straight-line, net-neutral on the stack,
    // and never dip down to the stored value.
    bool ok = true;
    int depth = 0;
    for (std::size_t j = i + 1; j < read; ++j) {
      if (lead[j]) {
        ok = false;
        break;
      }
      int pops = 0;
      int pushes = 0;
      if (!stackEffect(p, p.code[j], pops, pushes) || pops > depth) {
        ok = false;
        break;
      }
      depth += pushes - pops;
    }
    if (!ok || depth != 0) {
      continue;
    }
    p.code[i] = kNop;
    p.code[read] = kNop;
    ++stats.forwardedStores;
    changed = true;
  }
  return changed;
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

/// Deletes Nops (and, optionally, unreachable code), remapping jump
/// targets and function ranges. A costed Nop transfers its cycles to the
/// next surviving instruction of its basic block; when a leader intervenes
/// the Nop is kept instead, so per-item cycle counts never change.
/// Unreachable instructions never executed and are dropped cost-free.
void compact(Program& p, std::vector<std::uint32_t>& costs,
             bool removeUnreachable, OptStats& stats) {
  const std::size_t n = p.code.size();
  if (n == 0) {
    return;
  }
  std::vector<bool> reach;
  if (removeUnreachable) {
    reach = computeReachable(p);
  }
  const std::vector<bool> lead =
      computeLeaders(p, removeUnreachable ? &reach : nullptr);

  std::vector<bool> keep(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    if (removeUnreachable && !reach[i]) {
      keep[i] = false;
      costs[i] = 0;
      continue;
    }
    if (p.code[i].op != Op::Nop) {
      continue;
    }
    if (costs[i] != 0) {
      std::size_t j = i + 1;
      while (j < n && !lead[j] && p.code[j].op == Op::Nop) {
        ++j;
      }
      if (j >= n || lead[j]) {
        continue; // no same-block receiver: retain the costed Nop
      }
      costs[j] += costs[i];
      costs[i] = 0;
    }
    keep[i] = false;
  }

  std::vector<std::uint32_t> remap(n + 1, 0);
  std::uint32_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    remap[i] = live;
    if (keep[i]) {
      ++live;
    }
  }
  remap[n] = live;
  if (live == n) {
    return;
  }

  std::vector<Instr> newCode;
  std::vector<std::uint32_t> newCosts;
  newCode.reserve(live);
  newCosts.reserve(live);
  for (std::size_t i = 0; i < n; ++i) {
    if (!keep[i]) {
      continue;
    }
    Instr in = p.code[i];
    switch (in.op) {
      case Op::Jmp:
      case Op::Jz:
      case Op::Jnz:
        if (in.a >= 0 && std::size_t(in.a) <= n) {
          in.a = std::int32_t(remap[std::size_t(in.a)]);
        }
        break;
      case Op::CmpJz:
      case Op::CmpJnz: {
        const std::int32_t t = cmpJumpTarget(in.a);
        if (std::size_t(t) <= n) {
          in.a = encodeCmpJump(cmpFromJump(in.a),
                               std::int32_t(remap[std::size_t(t)]));
        }
        break;
      }
      default:
        break;
    }
    newCode.push_back(in);
    newCosts.push_back(costs[i]);
  }
  stats.removedInstrs += std::uint32_t(n - live);
  p.code = std::move(newCode);
  costs = std::move(newCosts);
  for (FunctionInfo& f : p.functions) {
    f.codeStart = remap[std::min<std::size_t>(f.codeStart, n)];
    f.codeEnd = remap[std::min<std::size_t>(f.codeEnd, n)];
  }
}

} // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

OptStats optimizeWith(Program& p, const OptOptions& opts) {
  OptStats stats;
  std::vector<std::uint32_t> costs(p.code.size());
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    costs[i] = instrCycleCost(p.code[i]);
  }

  if (opts.constantFolding || opts.algebraic || opts.deadCode || opts.fuse) {
    {
      const std::vector<bool> lead = computeLeaders(p, nullptr);
      for (const FunctionInfo& f : p.functions) {
        if (opts.constantFolding || opts.algebraic) {
          simFunction(p, f, opts, costs, lead, stats);
        }
        if (opts.algebraic) {
          condNormFunction(p, f, lead, stats);
        }
        if (opts.deadCode) {
          pushPopFunction(p, f, lead);
        }
      }
      compact(p, costs, opts.deadCode, stats);
    }
    if (opts.fuse) {
      // Fuse to a fixpoint, compacting between rounds so earlier fusions
      // (e.g. PushFrameAddr+Load -> LoadFrame) become adjacent to their
      // next partner (LoadFrame+binop -> FrameBin -> FrameBin2). Jump
      // threading and store->load forwarding join the fixpoint because
      // they feed on fusion products (CmpJz heads, StoreFrame/LoadFrame
      // pairs) and their rewrites expose further fusions. Each pass gets
      // fresh leaders: threading adds jump edges the others must see.
      for (int round = 0; round < 12; ++round) {
        bool changed = false;
        {
          const std::vector<bool> lead = computeLeaders(p, nullptr);
          for (const FunctionInfo& f : p.functions) {
            changed = fuseFunction(p, f, costs, lead, stats) || changed;
          }
        }
        {
          const std::vector<bool> lead = computeLeaders(p, nullptr);
          for (const FunctionInfo& f : p.functions) {
            changed = threadFunction(p, f, costs, lead, stats) || changed;
          }
        }
        {
          const std::vector<bool> lead = computeLeaders(p, nullptr);
          for (const FunctionInfo& f : p.functions) {
            changed = forwardFunction(p, f, costs, lead, stats) || changed;
          }
        }
        if (!changed) {
          break;
        }
        compact(p, costs, opts.deadCode, stats);
      }
      if (opts.deadCode) {
        const std::vector<bool> lead = computeLeaders(p, nullptr);
        for (const FunctionInfo& f : p.functions) {
          deadStoreFunction(p, f, stats);
          pushPopFunction(p, f, lead);
        }
        compact(p, costs, opts.deadCode, stats);
      }
    }
  }
  p.cycleCosts = std::move(costs);
  return stats;
}

OptStats optimize(Program& program, OptLevel level) {
  program.optLevel = std::uint8_t(level);
  if (level == OptLevel::O0) {
    program.cycleCosts.clear();
    return {};
  }
  return optimizeWith(program, OptOptions::forLevel(level));
}

} // namespace clc
