// Recursive-descent parser for the clc OpenCL-C subset.
#pragma once

#include <memory>
#include <string>

#include "clc/ast.h"

namespace clc {

/// Parses a full translation unit (struct/typedef declarations and
/// functions). Throws CompileError on the first syntax error.
std::unique_ptr<TranslationUnit> parse(const std::string& source);

} // namespace clc
