#include "clc/vm.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "clc/builtins.h"
#include "clc/eval.h"

namespace clc {

namespace {

// Scalar semantics (slot helpers, canon, convert, arithmetic, compare)
// live in clc/eval.h so the optimizer folds with the VM's exact behavior.
using namespace clc::eval;

// --- per-launch immutable context ---------------------------------------------

struct LaunchContext {
  const Program* program = nullptr;
  const std::vector<Segment>* segments = nullptr;
  const FunctionInfo* kernelFunc = nullptr;
  const KernelInfo* kernel = nullptr;
  const std::vector<KernelArgValue>* args = nullptr;
  std::vector<std::uint32_t> localArgOffsets; // for LocalPtr args
  std::uint32_t totalLocalSize = 0;
  NDRange range;
  std::size_t groupCount[3] = {1, 1, 1};
  /// Per-instruction cycle costs (Program::cycleCosts or derived).
  const std::uint32_t* costs = nullptr;
  /// Barrier-free kernels take the straight-line group runner.
  bool hasBarrier = true;
};

struct Frame {
  std::uint32_t funcIndex = 0;
  std::uint32_t returnPc = 0;
  std::uint32_t frameBase = 0; // base of *this* frame in the private arena
  std::uint32_t prevBase = 0;
};

enum class ItemStatus { Running, AtBarrier, Done };

constexpr std::size_t kMaxPrivateArena = 1 << 20;  // 1 MiB per work-item
constexpr std::size_t kMaxCallDepth = 64;
constexpr std::size_t kMaxOperands = 4096;

/// One work-item's execution state: a resumable interpreter.
class ItemVM {
public:
  void init(const LaunchContext& ctx, std::uint8_t* localBase,
            std::size_t localSize, const std::size_t globalId[3],
            const std::size_t localId[3], const std::size_t groupId[3]) {
    ctx_ = &ctx;
    localBase_ = localBase;
    localSize_ = localSize;
    for (int d = 0; d < 3; ++d) {
      globalId_[d] = globalId[d];
      localId_[d] = localId[d];
      groupId_[d] = groupId[d];
    }
    stack_.clear();
    frames_.clear();
    cycles_ = 0;
    instructions_ = 0;
    bytesRead_ = 0;
    bytesWritten_ = 0;
    atomics_ = 0;
    cachedSeg_ = ~0u;
    status_ = ItemStatus::Running;

    const FunctionInfo& f = *ctx.kernelFunc;
    arena_.assign(f.frameSize, 0);
    Frame frame;
    frame.funcIndex = ctx.kernel->functionIndex;
    frame.returnPc = ~0u;
    frame.frameBase = 0;
    frame.prevBase = 0;
    frames_.push_back(frame);
    pc_ = f.codeStart;
    fillKernelArgs();
  }

  ItemStatus status() const noexcept { return status_; }
  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint64_t instructions() const noexcept { return instructions_; }
  std::uint64_t bytesRead() const noexcept { return bytesRead_; }
  std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }
  std::uint64_t atomics() const noexcept { return atomics_; }

  /// Runs until completion or the next barrier.
  void resume() {
    COMMON_CHECK(status_ != ItemStatus::Done);
    status_ = ItemStatus::Running;
    const Instr* const code = ctx_->program->code.data();
    const std::uint32_t* const costs = ctx_->costs;
    // Instruction/cycle counters are accumulated in locals and flushed at
    // the (rare) suspension points; resolve()/doBuiltin() still add their
    // dynamic extras (global latency, builtin costs) to cycles_ directly.
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    const auto flush = [&] {
      instructions_ += instructions;
      cycles_ += cycles;
    };
    for (;;) {
      const Instr instr = code[pc_];
      cycles += costs[pc_];
      ++pc_;
      ++instructions;
      switch (instr.op) {
        case Op::Nop:
          break;
        case Op::PushConst:
          push(ctx_->program->constants[std::size_t(instr.a)]);
          break;
        case Op::PushFrameAddr:
          push(packPointer(MemSpace::Private, 0,
                           frames_.back().frameBase + std::uint64_t(instr.a)));
          break;
        case Op::PushLocalAddr:
          push(packPointer(MemSpace::Local, 0, std::uint64_t(instr.a)));
          break;
        case Op::Dup: {
          const std::uint64_t v = top();
          push(v);
          break;
        }
        case Op::Pop:
          (void)pop();
          break;
        case Op::Swap: {
          const std::uint64_t a = pop();
          const std::uint64_t b = pop();
          push(a);
          push(b);
          break;
        }
        case Op::Rot3: {
          const std::uint64_t c = pop();
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(b);
          push(c);
          push(a);
          break;
        }
        case Op::Load: {
          const std::uint64_t ptr = pop();
          const std::size_t size = typeTagSize(instr.tag);
          const std::uint8_t* p = resolve(ptr, size, /*write=*/false);
          std::uint64_t v = 0;
          std::memcpy(&v, p, size);
          push(canon(v, instr.tag));
          break;
        }
        case Op::Store: {
          const std::uint64_t v = pop();
          const std::uint64_t ptr = pop();
          const std::size_t size = typeTagSize(instr.tag);
          std::uint8_t* p = resolve(ptr, size, /*write=*/true);
          std::memcpy(p, &v, size);
          break;
        }
        case Op::StoreKeep: {
          const std::uint64_t v = pop();
          const std::uint64_t ptr = pop();
          const std::size_t size = typeTagSize(instr.tag);
          std::uint8_t* p = resolve(ptr, size, /*write=*/true);
          std::memcpy(p, &v, size);
          push(v);
          break;
        }
        case Op::MemCopy: {
          const std::uint64_t src = pop();
          const std::uint64_t dst = pop();
          const auto size = std::size_t(instr.a);
          const std::uint8_t* s = resolve(src, size, /*write=*/false);
          std::uint8_t* d = resolve(dst, size, /*write=*/true);
          std::memmove(d, s, size);
          break;
        }
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Div:
        case Op::Rem:
        case Op::Shl:
        case Op::Shr:
        case Op::BitAnd:
        case Op::BitOr:
        case Op::BitXor: {
          const std::uint64_t rhs = pop();
          const std::uint64_t lhs = pop();
          push(arith(instr.op, instr.tag, lhs, rhs));
          break;
        }
        case Op::Neg:
          push(evalNeg(instr.tag, pop()));
          break;
        case Op::BitNot:
          push(canon(~pop(), instr.tag));
          break;
        case Op::CmpEq:
        case Op::CmpNe:
        case Op::CmpLt:
        case Op::CmpLe:
        case Op::CmpGt:
        case Op::CmpGe: {
          const std::uint64_t rhs = pop();
          const std::uint64_t lhs = pop();
          push(compare(instr.op, instr.tag, lhs, rhs) ? 1 : 0);
          break;
        }
        case Op::LogNot:
          push(pop() == 0 ? 1 : 0);
          break;
        case Op::Conv: {
          const auto from = TypeTag((instr.a >> 8) & 0xff);
          const auto to = TypeTag(instr.a & 0xff);
          push(convert(pop(), from, to));
          break;
        }
        case Op::Jmp:
          pc_ = std::uint32_t(instr.a);
          break;
        case Op::Jz:
          if (pop() == 0) pc_ = std::uint32_t(instr.a);
          break;
        case Op::Jnz:
          if (pop() != 0) pc_ = std::uint32_t(instr.a);
          break;
        case Op::Call:
          doCall(std::uint32_t(instr.a));
          break;
        case Op::CallBuiltin:
          doBuiltin(Builtin(instr.a), instr.tag);
          break;
        case Op::Barrier:
          status_ = ItemStatus::AtBarrier;
          flush();
          return;
        case Op::Ret:
          if (doReturn()) {
            flush();
            return;
          }
          break;
        case Op::RetVal: {
          const std::uint64_t v = pop();
          const bool done = doReturn();
          push(v);
          if (done) {
            flush();
            return;
          }
          break;
        }
        case Op::RetStruct: {
          const std::uint64_t src = pop();
          std::uint64_t sret = 0;
          {
            const std::uint8_t* p =
                resolve(packPointer(MemSpace::Private, 0,
                                    frames_.back().frameBase),
                        8, /*write=*/false);
            std::memcpy(&sret, p, 8);
          }
          const auto size = std::size_t(instr.a);
          const std::uint8_t* s = resolve(src, size, /*write=*/false);
          std::uint8_t* d = resolve(sret, size, /*write=*/true);
          std::memmove(d, s, size);
          if (doReturn()) {
            flush();
            return;
          }
          break;
        }
        case Op::Trap:
          trap(instr.a == 1
                   ? "control reached the end of a non-void function"
                   : "kernel trap");
          break;
        case Op::LoadFrame: {
          // Offsets are statically verified (optimizer/serializer), so no
          // per-access bounds check is needed here.
          std::uint64_t v = 0;
          std::memcpy(&v,
                      arena_.data() + frames_.back().frameBase +
                          std::uint32_t(instr.a),
                      typeTagSize(instr.tag));
          push(canon(v, instr.tag));
          break;
        }
        case Op::StoreFrame: {
          const std::uint64_t v = pop();
          std::memcpy(arena_.data() + frames_.back().frameBase +
                          std::uint32_t(instr.a),
                      &v, typeTagSize(instr.tag));
          break;
        }
        case Op::BinConst: {
          const Op bop = embeddedOp(instr.a);
          const std::uint64_t rhs =
              ctx_->program->constants[std::size_t(embeddedOperand(instr.a))];
          const std::uint64_t lhs = pop();
          if (isCompareOp(bop)) {
            push(compare(bop, instr.tag, lhs, rhs) ? 1 : 0);
          } else {
            push(arith(bop, instr.tag, lhs, rhs));
          }
          break;
        }
        case Op::FrameBin: {
          const Op bop = embeddedOp(instr.a);
          std::uint64_t rhs = 0;
          std::memcpy(&rhs,
                      arena_.data() + frames_.back().frameBase +
                          std::uint32_t(embeddedOperand(instr.a)),
                      typeTagSize(instr.tag));
          rhs = canon(rhs, instr.tag);
          const std::uint64_t lhs = pop();
          if (isCompareOp(bop)) {
            push(compare(bop, instr.tag, lhs, rhs) ? 1 : 0);
          } else {
            push(arith(bop, instr.tag, lhs, rhs));
          }
          break;
        }
        case Op::LoadBin: {
          const Op bop = Op(instr.a);
          const std::uint64_t ptr = pop();
          const std::size_t size = typeTagSize(instr.tag);
          const std::uint8_t* p = resolve(ptr, size, /*write=*/false);
          std::uint64_t rhs = 0;
          std::memcpy(&rhs, p, size);
          rhs = canon(rhs, instr.tag);
          const std::uint64_t lhs = pop();
          if (isCompareOp(bop)) {
            push(compare(bop, instr.tag, lhs, rhs) ? 1 : 0);
          } else {
            push(arith(bop, instr.tag, lhs, rhs));
          }
          break;
        }
        case Op::CmpJz:
        case Op::CmpJnz: {
          const std::uint64_t rhs = pop();
          const std::uint64_t lhs = pop();
          const bool hit =
              compare(cmpFromJump(instr.a), instr.tag, lhs, rhs);
          if (hit == (instr.op == Op::CmpJnz)) {
            pc_ = std::uint32_t(cmpJumpTarget(instr.a));
          }
          break;
        }
        case Op::MulAdd: {
          // Two-step multiply-then-add: bit-identical to the Mul+Add pair
          // it replaces (deliberately *not* a fused fma).
          const std::uint64_t rhs = pop();
          const std::uint64_t lhs = pop();
          const std::uint64_t acc = pop();
          push(arith(Op::Add, instr.tag, acc,
                     arith(Op::Mul, instr.tag, lhs, rhs)));
          break;
        }
        case Op::FrameBin2: {
          const Op bop = frame2Op(instr.a);
          const std::uint8_t* frame = arena_.data() + frames_.back().frameBase;
          const std::size_t size = typeTagSize(instr.tag);
          std::uint64_t lhs = 0;
          std::uint64_t rhs = 0;
          std::memcpy(&lhs, frame + std::uint32_t(frame2X(instr.a)), size);
          std::memcpy(&rhs, frame + std::uint32_t(frame2Y(instr.a)), size);
          lhs = canon(lhs, instr.tag);
          rhs = canon(rhs, instr.tag);
          if (isCompareOp(bop)) {
            push(compare(bop, instr.tag, lhs, rhs) ? 1 : 0);
          } else {
            push(arith(bop, instr.tag, lhs, rhs));
          }
          break;
        }
      }
    }
  }

private:
  [[noreturn]] void trap(const std::string& message) const {
    throw TrapError("work-item (" + std::to_string(globalId_[0]) + "," +
                    std::to_string(globalId_[1]) + "," +
                    std::to_string(globalId_[2]) + ") in kernel '" +
                    ctx_->kernel->name + "': " + message);
  }

  void push(std::uint64_t v) {
    if (stack_.size() >= kMaxOperands) {
      trap("operand stack overflow");
    }
    stack_.push_back(v);
  }

  std::uint64_t pop() {
    COMMON_CHECK_MSG(!stack_.empty(), "operand stack underflow (VM bug)");
    const std::uint64_t v = stack_.back();
    stack_.pop_back();
    return v;
  }

  std::uint64_t top() const {
    COMMON_CHECK(!stack_.empty());
    return stack_.back();
  }

  /// Resolves a packed pointer to raw host memory, bounds-checking the
  /// access. Also maintains the global traffic counters.
  std::uint8_t* resolve(std::uint64_t ptr, std::size_t size, bool write) {
    const MemSpace space = pointerSpace(ptr);
    const std::uint64_t offset = pointerOffset(ptr);
    switch (space) {
      case MemSpace::Invalid:
        trap(ptr == 0 ? "null pointer dereference"
                      : "wild pointer dereference");
      case MemSpace::Private: {
        if (offset + size > arena_.size()) {
          trap("private memory access out of bounds (offset " +
               std::to_string(offset) + ", size " + std::to_string(size) +
               ", arena " + std::to_string(arena_.size()) + ")");
        }
        return arena_.data() + offset;
      }
      case MemSpace::Local: {
        if (offset + size > localSize_) {
          trap("__local memory access out of bounds (offset " +
               std::to_string(offset) + ", size " + std::to_string(size) +
               ", local " + std::to_string(localSize_) + ")");
        }
        return localBase_ + offset;
      }
      case MemSpace::Global: {
        const std::uint64_t seg = pointerSegment(ptr);
        // One-entry segment cache: kernels overwhelmingly stream through a
        // single buffer, so hoist the table lookup out of the common case.
        if (std::uint32_t(seg) != cachedSeg_) {
          if (seg >= ctx_->segments->size()) {
            trap("invalid __global pointer (null or stale?)");
          }
          const Segment& segment = (*ctx_->segments)[seg];
          cachedSeg_ = std::uint32_t(seg);
          cachedBase_ = segment.base;
          cachedSize_ = segment.size;
        }
        if (offset + size > cachedSize_) {
          trap("__global memory access out of bounds (buffer " +
               std::to_string(seg) + ", offset " + std::to_string(offset) +
               ", size " + std::to_string(size) + ", buffer size " +
               std::to_string(cachedSize_) + ")");
        }
        if (write) {
          bytesWritten_ += size;
        } else {
          bytesRead_ += size;
        }
        cycles_ += 8; // global memory latency beyond the base op cost
        return cachedBase_ + offset;
      }
    }
    trap("wild pointer");
  }

  std::uint64_t arith(Op op, TypeTag tag, std::uint64_t lhs,
                      std::uint64_t rhs) {
    std::uint64_t out = 0;
    switch (evalArith(op, tag, lhs, rhs, out)) {
      case EvalStatus::Ok:
        return out;
      case EvalStatus::DivByZero:
        trap(op == Op::Rem ? "integer remainder by zero"
                           : "integer division by zero");
      case EvalStatus::BadOp:
        break;
    }
    trap(isFloatTag(tag) ? "float bitwise op" : "bad arithmetic op");
  }

  bool compare(Op op, TypeTag tag, std::uint64_t lhs, std::uint64_t rhs) {
    bool out = false;
    if (evalCompare(op, tag, lhs, rhs, out) != EvalStatus::Ok) {
      trap("bad compare op");
    }
    return out;
  }

  void doCall(std::uint32_t funcIndex) {
    if (frames_.size() >= kMaxCallDepth) {
      trap("call stack overflow");
    }
    const FunctionInfo& f = ctx_->program->functions[funcIndex];
    const std::uint32_t newBase =
        std::uint32_t((arena_.size() + 7) / 8 * 8);
    if (newBase + f.frameSize > kMaxPrivateArena) {
      trap("private memory exhausted");
    }
    arena_.resize(newBase + f.frameSize, 0);

    // Pop arguments in reverse into the callee frame.
    for (std::size_t i = f.params.size(); i-- > 0;) {
      const ParamInfo& p = f.params[i];
      const std::uint64_t v = pop();
      if (p.kind == ParamKind::Struct) {
        const std::uint8_t* src = resolve(v, p.size, /*write=*/false);
        std::memcpy(arena_.data() + newBase + p.frameOffset, src, p.size);
      } else {
        std::memcpy(arena_.data() + newBase + p.frameOffset, &v,
                    std::min<std::size_t>(p.size, 8));
      }
    }
    if (f.returnsStruct) {
      const std::uint64_t sret = pop();
      std::memcpy(arena_.data() + newBase, &sret, 8); // slot 0 = sret
    }

    Frame frame;
    frame.funcIndex = funcIndex;
    frame.returnPc = pc_;
    frame.frameBase = newBase;
    frame.prevBase = frames_.back().frameBase;
    frames_.push_back(frame);
    pc_ = f.codeStart;
  }

  /// Returns true when the kernel's top-level function returned.
  bool doReturn() {
    const Frame frame = frames_.back();
    frames_.pop_back();
    if (frames_.empty()) {
      status_ = ItemStatus::Done;
      return true;
    }
    arena_.resize(frame.frameBase);
    pc_ = frame.returnPc;
    return false;
  }

  void doBuiltin(Builtin id, TypeTag tag) {
    cycles_ += builtinCycleCost(id);
    switch (id) {
      case Builtin::GetGlobalId: push(idQuery(globalId_)); return;
      case Builtin::GetLocalId: push(idQuery(localId_)); return;
      case Builtin::GetGroupId: push(idQuery(groupId_)); return;
      case Builtin::GetGlobalSize: {
        const std::uint64_t d = pop();
        push(d < 3 ? ctx_->range.globalSize[d] : 1);
        return;
      }
      case Builtin::GetLocalSize: {
        const std::uint64_t d = pop();
        push(d < 3 ? ctx_->range.localSize[d] : 1);
        return;
      }
      case Builtin::GetNumGroups: {
        const std::uint64_t d = pop();
        push(d < 3 ? ctx_->groupCount[d] : 1);
        return;
      }
      case Builtin::GetWorkDim:
        push(ctx_->range.dims);
        return;
      case Builtin::Barrier:
        COMMON_CHECK_MSG(false, "barrier must compile to Op::Barrier");
        return;
      default:
        break;
    }

    if (id >= Builtin::AtomicAdd && id <= Builtin::AtomicAddFloat) {
      doAtomic(id, tag);
      return;
    }

    const std::uint8_t arity = builtinArity(id);
    std::uint64_t a[3] = {0, 0, 0};
    for (std::size_t i = arity; i-- > 0;) {
      a[i] = pop();
    }
    const bool f64 = tag == TypeTag::F64;
    const auto x = [&](int i) {
      return f64 ? slotF64(a[i]) : double(slotF32(a[i]));
    };
    const auto ret = [&](double d) {
      push(f64 ? f64Slot(d) : f32Slot(float(d)));
    };
    // For f32 operands compute in float precision where it matters
    // (matches what a GPU would produce more closely).
    const auto retf = [&](auto fn) {
      if (f64) {
        push(f64Slot(fn(slotF64(a[0]))));
      } else {
        push(f32Slot(fn(slotF32(a[0]))));
      }
    };
    const auto retf2 = [&](auto fn) {
      if (f64) {
        push(f64Slot(fn(slotF64(a[0]), slotF64(a[1]))));
      } else {
        push(f32Slot(fn(slotF32(a[0]), slotF32(a[1]))));
      }
    };

    switch (id) {
      case Builtin::Sqrt: retf([](auto v) { return std::sqrt(v); }); return;
      case Builtin::Rsqrt:
        retf([](auto v) { return decltype(v)(1) / std::sqrt(v); });
        return;
      case Builtin::Sin: retf([](auto v) { return std::sin(v); }); return;
      case Builtin::Cos: retf([](auto v) { return std::cos(v); }); return;
      case Builtin::Tan: retf([](auto v) { return std::tan(v); }); return;
      case Builtin::Asin: retf([](auto v) { return std::asin(v); }); return;
      case Builtin::Acos: retf([](auto v) { return std::acos(v); }); return;
      case Builtin::Atan: retf([](auto v) { return std::atan(v); }); return;
      case Builtin::Exp: retf([](auto v) { return std::exp(v); }); return;
      case Builtin::Exp2: retf([](auto v) { return std::exp2(v); }); return;
      case Builtin::Log: retf([](auto v) { return std::log(v); }); return;
      case Builtin::Log2: retf([](auto v) { return std::log2(v); }); return;
      case Builtin::Log10: retf([](auto v) { return std::log10(v); }); return;
      case Builtin::Fabs: retf([](auto v) { return std::fabs(v); }); return;
      case Builtin::Floor: retf([](auto v) { return std::floor(v); }); return;
      case Builtin::Ceil: retf([](auto v) { return std::ceil(v); }); return;
      case Builtin::Round: retf([](auto v) { return std::round(v); }); return;
      case Builtin::Trunc: retf([](auto v) { return std::trunc(v); }); return;
      case Builtin::Pow:
        retf2([](auto x_, auto y_) { return std::pow(x_, y_); });
        return;
      case Builtin::Atan2:
        retf2([](auto x_, auto y_) { return std::atan2(x_, y_); });
        return;
      case Builtin::Fmod:
        retf2([](auto x_, auto y_) { return std::fmod(x_, y_); });
        return;
      case Builtin::Fmin:
        retf2([](auto x_, auto y_) { return std::fmin(x_, y_); });
        return;
      case Builtin::Fmax:
        retf2([](auto x_, auto y_) { return std::fmax(x_, y_); });
        return;
      case Builtin::Hypot:
        retf2([](auto x_, auto y_) { return std::hypot(x_, y_); });
        return;
      case Builtin::Copysign:
        retf2([](auto x_, auto y_) { return std::copysign(x_, y_); });
        return;
      case Builtin::Mad:
      case Builtin::Fma:
        if (f64) {
          push(f64Slot(std::fma(slotF64(a[0]), slotF64(a[1]), slotF64(a[2]))));
        } else {
          push(f32Slot(std::fma(slotF32(a[0]), slotF32(a[1]), slotF32(a[2]))));
        }
        return;
      case Builtin::Mix:
        ret(x(0) + (x(1) - x(0)) * x(2));
        return;
      case Builtin::Clamp:
        ret(std::fmin(std::fmax(x(0), x(1)), x(2)));
        return;
      case Builtin::IClamp: {
        const auto v = std::int64_t(a[0]);
        const auto lo = std::int64_t(a[1]);
        const auto hi = std::int64_t(a[2]);
        push(std::uint64_t(std::min(std::max(v, lo), hi)));
        return;
      }
      case Builtin::IMin:
      case Builtin::IMax: {
        const bool wantMin = id == Builtin::IMin;
        if (isSignedTag(tag)) {
          const auto l = std::int64_t(a[0]);
          const auto r = std::int64_t(a[1]);
          push(std::uint64_t(wantMin ? std::min(l, r) : std::max(l, r)));
        } else {
          push(wantMin ? std::min(a[0], a[1]) : std::max(a[0], a[1]));
        }
        return;
      }
      case Builtin::IAbs: {
        const auto v = std::int64_t(a[0]);
        push(canon(std::uint64_t(v < 0 ? -v : v), tag));
        return;
      }
      case Builtin::AsInt:
      case Builtin::AsUInt:
      case Builtin::AsFloat:
        // 32-bit reinterpretation: the slot already holds the bits.
        push(id == Builtin::AsInt ? canon(a[0], TypeTag::I32)
                                  : (a[0] & 0xffffffffULL));
        return;
      case Builtin::ConvertInt:
        push(convert(a[0], tag, TypeTag::I32));
        return;
      case Builtin::ConvertUInt:
        push(convert(a[0], tag, TypeTag::U32));
        return;
      case Builtin::ConvertFloat:
        push(convert(a[0], tag, TypeTag::F32));
        return;
      default:
        trap(std::string("builtin not implemented: ") + builtinName(id));
    }
  }

  void doAtomic(Builtin id, TypeTag tag) {
    ++atomics_;
    const std::uint8_t arity = builtinArity(id);
    std::uint64_t a[3] = {0, 0, 0};
    for (std::size_t i = arity; i-- > 0;) {
      a[i] = pop();
    }
    const std::uint64_t ptr = a[0];
    const MemSpace space = pointerSpace(ptr);
    std::uint8_t* p = resolve(ptr, 4, /*write=*/true);
    if ((reinterpret_cast<std::uintptr_t>(p) & 3) != 0) {
      trap("misaligned atomic access");
    }
    auto* word = reinterpret_cast<std::uint32_t*>(p);

    // Global memory may be touched by several host threads (one per
    // work-group); __local memory is single-threaded within the group.
    const bool needAtomic = space == MemSpace::Global;

    const auto rmw = [&](auto fn) -> std::uint32_t {
      if (needAtomic) {
        std::atomic_ref<std::uint32_t> ref(*word);
        std::uint32_t expected = ref.load(std::memory_order_relaxed);
        for (;;) {
          const std::uint32_t desired = fn(expected);
          if (ref.compare_exchange_weak(expected, desired,
                                        std::memory_order_acq_rel)) {
            return expected;
          }
        }
      }
      const std::uint32_t old = *word;
      *word = fn(old);
      return old;
    };

    const auto operand = std::uint32_t(a[1]);
    std::uint32_t old = 0;
    switch (id) {
      case Builtin::AtomicAdd:
        old = rmw([&](std::uint32_t v) { return v + operand; });
        break;
      case Builtin::AtomicSub:
        old = rmw([&](std::uint32_t v) { return v - operand; });
        break;
      case Builtin::AtomicXchg:
        old = rmw([&](std::uint32_t) { return operand; });
        break;
      case Builtin::AtomicMin:
        if (isSignedTag(tag)) {
          old = rmw([&](std::uint32_t v) {
            return std::uint32_t(
                std::min(std::int32_t(v), std::int32_t(operand)));
          });
        } else {
          old = rmw([&](std::uint32_t v) { return std::min(v, operand); });
        }
        break;
      case Builtin::AtomicMax:
        if (isSignedTag(tag)) {
          old = rmw([&](std::uint32_t v) {
            return std::uint32_t(
                std::max(std::int32_t(v), std::int32_t(operand)));
          });
        } else {
          old = rmw([&](std::uint32_t v) { return std::max(v, operand); });
        }
        break;
      case Builtin::AtomicAnd:
        old = rmw([&](std::uint32_t v) { return v & operand; });
        break;
      case Builtin::AtomicOr:
        old = rmw([&](std::uint32_t v) { return v | operand; });
        break;
      case Builtin::AtomicXor:
        old = rmw([&](std::uint32_t v) { return v ^ operand; });
        break;
      case Builtin::AtomicInc:
        old = rmw([&](std::uint32_t v) { return v + 1; });
        break;
      case Builtin::AtomicDec:
        old = rmw([&](std::uint32_t v) { return v - 1; });
        break;
      case Builtin::AtomicCmpXchg: {
        const auto cmp = std::uint32_t(a[1]);
        const auto val = std::uint32_t(a[2]);
        old = rmw([&](std::uint32_t v) { return v == cmp ? val : v; });
        break;
      }
      case Builtin::AtomicAddFloat: {
        const float add = slotF32(a[1]);
        old = rmw([&](std::uint32_t v) {
          float f;
          std::memcpy(&f, &v, 4);
          f += add;
          std::uint32_t out;
          std::memcpy(&out, &f, 4);
          return out;
        });
        push(old & 0xffffffffULL);
        return;
      }
      default:
        trap("bad atomic builtin");
    }
    push(canon(old, tag == TypeTag::F32 ? TypeTag::U32 : tag));
  }

  std::uint64_t idQuery(const std::size_t ids[3]) {
    const std::uint64_t d = pop();
    return d < 3 ? ids[d] : 0;
  }

  void fillKernelArgs() {
    const FunctionInfo& f = *ctx_->kernelFunc;
    const auto& args = *ctx_->args;
    COMMON_CHECK(args.size() == f.params.size());
    std::size_t localArgIdx = 0;
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      const ParamInfo& p = f.params[i];
      const KernelArgValue& arg = args[i];
      std::uint64_t slot = 0;
      switch (arg.kind) {
        case KernelArgValue::Kind::Buffer:
          slot = packPointer(MemSpace::Global, arg.segmentIndex, 0);
          break;
        case KernelArgValue::Kind::Local:
          slot = packPointer(MemSpace::Local, 0,
                             ctx_->localArgOffsets[localArgIdx++]);
          break;
        case KernelArgValue::Kind::Scalar:
          slot = arg.scalar;
          break;
        case KernelArgValue::Kind::Struct:
          COMMON_CHECK(arg.bytes.size() == p.size);
          std::memcpy(arena_.data() + p.frameOffset, arg.bytes.data(),
                      p.size);
          continue;
      }
      if (p.kind == ParamKind::LocalPtr && arg.kind != KernelArgValue::Kind::Local) {
        // Counting of local args must stay in sync; reaching here is a
        // host-side bug caught earlier by ocl::Kernel::setArg.
        COMMON_CHECK_MSG(false, "local param given non-local arg");
      }
      std::memcpy(arena_.data() + p.frameOffset, &slot,
                  std::min<std::size_t>(p.size == 0 ? 8 : p.size, 8));
    }
  }

  const LaunchContext* ctx_ = nullptr;
  std::uint8_t* localBase_ = nullptr;
  std::size_t localSize_ = 0;
  std::size_t globalId_[3] = {0, 0, 0};
  std::size_t localId_[3] = {0, 0, 0};
  std::size_t groupId_[3] = {0, 0, 0};

  std::vector<std::uint8_t> arena_;
  std::vector<std::uint64_t> stack_;
  std::vector<Frame> frames_;
  std::uint32_t pc_ = 0;
  ItemStatus status_ = ItemStatus::Running;

  // One-entry __global segment cache (see resolve()).
  std::uint32_t cachedSeg_ = ~0u;
  std::uint8_t* cachedBase_ = nullptr;
  std::size_t cachedSize_ = 0;

  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t bytesRead_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t atomics_ = 0;
};

/// Per-group counters filled by the group runner.
struct GroupResult {
  GroupCost cost;
  std::uint64_t instructions = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t atomics = 0;
  std::uint64_t barrierWaits = 0;
};

void runGroup(const LaunchContext& ctx, std::size_t groupLinear,
              GroupResult& result) {
  const std::size_t gx = groupLinear % ctx.groupCount[0];
  const std::size_t gy = (groupLinear / ctx.groupCount[0]) % ctx.groupCount[1];
  const std::size_t gz = groupLinear / (ctx.groupCount[0] * ctx.groupCount[1]);
  const std::size_t groupId[3] = {gx, gy, gz};

  std::vector<std::uint8_t> localMem(ctx.totalLocalSize, 0);
  const std::size_t itemCount = ctx.range.totalLocal();

  if (!ctx.hasBarrier) {
    // Fast path: the kernel can never yield, so each work-item runs
    // straight through on one reusable interpreter. Arena/stack capacity
    // carries over between items and there is no fiber bookkeeping.
    ItemVM vm;
    for (std::size_t lz = 0; lz < ctx.range.localSize[2]; ++lz) {
      for (std::size_t ly = 0; ly < ctx.range.localSize[1]; ++ly) {
        for (std::size_t lx = 0; lx < ctx.range.localSize[0]; ++lx) {
          const std::size_t localId[3] = {lx, ly, lz};
          const std::size_t globalId[3] = {
              ctx.range.globalOffset[0] + gx * ctx.range.localSize[0] + lx,
              ctx.range.globalOffset[1] + gy * ctx.range.localSize[1] + ly,
              ctx.range.globalOffset[2] + gz * ctx.range.localSize[2] + lz,
          };
          vm.init(ctx, localMem.data(), localMem.size(), globalId, localId,
                  groupId);
          vm.resume();
          COMMON_CHECK_MSG(vm.status() == ItemStatus::Done,
                           "barrier in a kernel classified barrier-free");
          result.cost.sumCycles += vm.cycles();
          result.cost.maxCycles = std::max(result.cost.maxCycles, vm.cycles());
          result.instructions += vm.instructions();
          result.bytesRead += vm.bytesRead();
          result.bytesWritten += vm.bytesWritten();
          result.atomics += vm.atomics();
        }
      }
    }
    return;
  }

  std::vector<ItemVM> items(itemCount);

  std::size_t idx = 0;
  for (std::size_t lz = 0; lz < ctx.range.localSize[2]; ++lz) {
    for (std::size_t ly = 0; ly < ctx.range.localSize[1]; ++ly) {
      for (std::size_t lx = 0; lx < ctx.range.localSize[0]; ++lx) {
        const std::size_t localId[3] = {lx, ly, lz};
        const std::size_t globalId[3] = {
            ctx.range.globalOffset[0] + gx * ctx.range.localSize[0] + lx,
            ctx.range.globalOffset[1] + gy * ctx.range.localSize[1] + ly,
            ctx.range.globalOffset[2] + gz * ctx.range.localSize[2] + lz,
        };
        items[idx++].init(ctx, localMem.data(), localMem.size(), globalId,
                          localId, groupId);
      }
    }
  }

  // Round-robin between barriers.
  for (;;) {
    std::size_t done = 0;
    std::size_t atBarrier = 0;
    for (ItemVM& item : items) {
      if (item.status() == ItemStatus::Done) {
        ++done;
        continue;
      }
      item.resume();
      if (item.status() == ItemStatus::Done) {
        ++done;
      } else {
        ++atBarrier;
      }
    }
    if (atBarrier == 0) {
      break;
    }
    if (done != 0) {
      throw TrapError(
          "barrier divergence in kernel '" + ctx.kernel->name +
          "': some work-items of a group finished while others wait at a "
          "barrier");
    }
    ++result.barrierWaits;
  }

  for (const ItemVM& item : items) {
    result.cost.sumCycles += item.cycles();
    result.cost.maxCycles = std::max(result.cost.maxCycles, item.cycles());
    result.instructions += item.instructions();
    result.bytesRead += item.bytesRead();
    result.bytesWritten += item.bytesWritten();
    result.atomics += item.atomics();
  }
}

} // namespace

std::uint32_t opCycleCost(Op op) noexcept {
  switch (op) {
    case Op::Nop:
    case Op::Dup:
    case Op::Pop:
    case Op::Swap:
    case Op::Rot3:
      return 0; // stack shuffling models register traffic: free
    case Op::PushConst:
    case Op::PushFrameAddr:
    case Op::PushLocalAddr:
      return 1;
    case Op::Load:
    case Op::Store:
    case Op::StoreKeep:
      return 2; // private/local latency; global adds +8 in resolve()
    case Op::MemCopy:
      return 4;
    case Op::Div:
    case Op::Rem:
      return 8;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Neg:
    case Op::Shl:
    case Op::Shr:
    case Op::BitAnd:
    case Op::BitOr:
    case Op::BitXor:
    case Op::BitNot:
    case Op::CmpEq:
    case Op::CmpNe:
    case Op::CmpLt:
    case Op::CmpLe:
    case Op::CmpGt:
    case Op::CmpGe:
    case Op::LogNot:
    case Op::Conv:
      return 1;
    case Op::Jmp:
    case Op::Jz:
    case Op::Jnz:
      return 1;
    case Op::Call:
    case Op::Ret:
    case Op::RetVal:
    case Op::RetStruct:
      return 4;
    case Op::CallBuiltin:
      return 0; // builtinCycleCost covers it
    case Op::Barrier:
      return 16;
    case Op::Trap:
      return 0;
    // Superinstructions: the cost of the canonical sequence they replace.
    // Embedded ops are not visible here; instrCycleCost decodes them.
    case Op::LoadFrame:
    case Op::StoreFrame:
      return 3; // PushFrameAddr (1) + Load/Store (2)
    case Op::BinConst:
      return 2; // PushConst (1) + binop (1)
    case Op::FrameBin:
      return 4; // LoadFrame (3) + binop (1)
    case Op::LoadBin:
      return 3; // Load (2) + binop (1)
    case Op::CmpJz:
    case Op::CmpJnz:
      return 2; // compare (1) + conditional jump (1)
    case Op::MulAdd:
      return 2; // Mul (1) + Add (1)
    case Op::FrameBin2:
      return 7; // LoadFrame (3) + FrameBin without op (3) + binop (1)
  }
  return 1;
}

std::uint32_t instrCycleCost(const Instr& instr) noexcept {
  switch (instr.op) {
    case Op::BinConst:
      return 1 + opCycleCost(embeddedOp(instr.a));
    case Op::FrameBin:
      return 3 + opCycleCost(embeddedOp(instr.a));
    case Op::LoadBin:
      return 2 + opCycleCost(Op(instr.a));
    case Op::FrameBin2:
      return 6 + opCycleCost(frame2Op(instr.a));
    default:
      return opCycleCost(instr.op);
  }
}

bool kernelHasBarrier(const Program& program, const KernelInfo& kernel) {
  if (kernel.functionIndex >= program.functions.size()) {
    return true; // malformed; take the conservative path
  }
  std::vector<bool> seen(program.functions.size(), false);
  std::vector<std::uint32_t> worklist = {kernel.functionIndex};
  seen[kernel.functionIndex] = true;
  while (!worklist.empty()) {
    const FunctionInfo& f = program.functions[worklist.back()];
    worklist.pop_back();
    const std::uint32_t end =
        std::min<std::uint32_t>(f.codeEnd,
                                std::uint32_t(program.code.size()));
    for (std::uint32_t pc = f.codeStart; pc < end; ++pc) {
      const Instr& instr = program.code[pc];
      if (instr.op == Op::Barrier) {
        return true;
      }
      if (instr.op == Op::Call) {
        const auto callee = std::uint32_t(instr.a);
        if (callee < seen.size() && !seen[callee]) {
          seen[callee] = true;
          worklist.push_back(callee);
        }
      }
    }
  }
  return false;
}

LaunchStats executeKernel(const Program& program,
                          const std::string& kernelName, const NDRange& range,
                          const std::vector<KernelArgValue>& args,
                          const std::vector<Segment>& segments,
                          common::ThreadPool* pool) {
  const KernelInfo* kernel = program.findKernel(kernelName);
  if (kernel == nullptr) {
    throw common::InvalidArgument("no kernel named '" + kernelName + "'");
  }

  LaunchContext ctx;
  ctx.program = &program;
  ctx.segments = &segments;
  ctx.kernel = kernel;
  ctx.kernelFunc = &program.functions[kernel->functionIndex];
  ctx.args = &args;
  ctx.range = range;
  ctx.hasBarrier = kernelHasBarrier(program, *kernel);

  // Per-instruction cycle costs: the optimizer's table when present
  // (timing-invariance contract), otherwise derived from the opcode.
  std::vector<std::uint32_t> derivedCosts;
  if (program.cycleCosts.size() == program.code.size() &&
      !program.code.empty()) {
    ctx.costs = program.cycleCosts.data();
  } else {
    derivedCosts.reserve(program.code.size());
    for (const Instr& instr : program.code) {
      derivedCosts.push_back(instrCycleCost(instr));
    }
    ctx.costs = derivedCosts.data();
  }

  if (args.size() != ctx.kernelFunc->params.size()) {
    throw common::InvalidArgument(
        "kernel '" + kernelName + "' expects " +
        std::to_string(ctx.kernelFunc->params.size()) + " arguments, got " +
        std::to_string(args.size()));
  }

  for (std::uint32_t d = 0; d < 3; ++d) {
    if (range.localSize[d] == 0 || range.globalSize[d] == 0) {
      throw common::InvalidArgument("ND-range sizes must be non-zero");
    }
    if (range.globalSize[d] % range.localSize[d] != 0) {
      throw common::InvalidArgument(
          "global size must be divisible by the work-group size "
          "(OpenCL 1.1 rule); dimension " +
          std::to_string(d) + ": " + std::to_string(range.globalSize[d]) +
          " % " + std::to_string(range.localSize[d]) + " != 0");
    }
    ctx.groupCount[d] = range.globalSize[d] / range.localSize[d];
  }

  // Layout of one work-group's local memory: static __local declarations
  // first, then each __local pointer argument's region.
  std::uint32_t localTop = kernel->staticLocalSize;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (ctx.kernelFunc->params[i].kind == ParamKind::LocalPtr) {
      if (args[i].kind != KernelArgValue::Kind::Local) {
        throw common::InvalidArgument(
            "kernel argument " + std::to_string(i) +
            " is a __local pointer; the host must supply a size");
      }
      localTop = (localTop + 7) / 8 * 8;
      ctx.localArgOffsets.push_back(localTop);
      localTop += args[i].localSize;
    }
  }
  ctx.totalLocalSize = localTop;

  const std::size_t numGroups =
      ctx.groupCount[0] * ctx.groupCount[1] * ctx.groupCount[2];
  std::vector<GroupResult> results(numGroups);

  const auto runOne = [&](std::size_t g) { runGroup(ctx, g, results[g]); };
  if (pool != nullptr && numGroups > 1) {
    pool->parallelFor(numGroups, runOne);
  } else {
    for (std::size_t g = 0; g < numGroups; ++g) {
      runOne(g);
    }
  }

  LaunchStats stats;
  stats.groups.reserve(numGroups);
  for (const GroupResult& r : results) {
    stats.groups.push_back(r.cost);
    stats.instructions += r.instructions;
    stats.totalCycles += r.cost.sumCycles;
    stats.globalBytesRead += r.bytesRead;
    stats.globalBytesWritten += r.bytesWritten;
    stats.atomicOps += r.atomics;
    stats.barrierWaits += r.barrierWaits;
  }
  return stats;
}

} // namespace clc
