#include "clc/serialize.h"

#include "common/byte_stream.h"

namespace clc {

namespace {
constexpr std::uint32_t kMagic = 0x434c4342; // "CLCB"
} // namespace

std::vector<std::uint8_t> serializeProgram(const Program& program) {
  common::ByteWriter w;
  w.write<std::uint32_t>(kMagic);
  w.write<std::uint32_t>(Program::kSerialVersion);
  w.writeString(program.sourceHash);

  w.write<std::uint64_t>(program.code.size());
  for (const Instr& instr : program.code) {
    w.write<std::uint8_t>(static_cast<std::uint8_t>(instr.op));
    w.write<std::uint8_t>(static_cast<std::uint8_t>(instr.tag));
    w.write<std::int32_t>(instr.a);
  }

  w.writeVector(program.constants);

  w.write<std::uint64_t>(program.functions.size());
  for (const FunctionInfo& f : program.functions) {
    w.writeString(f.name);
    w.write<std::uint32_t>(f.codeStart);
    w.write<std::uint32_t>(f.codeEnd);
    w.write<std::uint32_t>(f.frameSize);
    w.write<std::uint8_t>(f.returnsValue ? 1 : 0);
    w.write<std::uint8_t>(f.returnsStruct ? 1 : 0);
    w.write<std::uint32_t>(f.returnSize);
    w.write<std::uint8_t>(f.isKernel ? 1 : 0);
    w.write<std::uint64_t>(f.params.size());
    for (const ParamInfo& p : f.params) {
      w.writeString(p.name);
      w.write<std::uint8_t>(static_cast<std::uint8_t>(p.kind));
      w.write<std::uint32_t>(p.size);
      w.write<std::uint8_t>(static_cast<std::uint8_t>(p.scalarTag));
      w.write<std::uint32_t>(p.frameOffset);
    }
  }

  w.write<std::uint64_t>(program.kernels.size());
  for (const KernelInfo& k : program.kernels) {
    w.writeString(k.name);
    w.write<std::uint32_t>(k.functionIndex);
    w.write<std::uint32_t>(k.staticLocalSize);
  }

  // v4: optimization level and the optimizer's per-instruction cycle table.
  w.write<std::uint8_t>(program.optLevel);
  w.writeVector(program.cycleCosts);
  return w.takeBytes();
}

Program deserializeProgram(const std::vector<std::uint8_t>& bytes) {
  common::ByteReader r(bytes);
  if (r.read<std::uint32_t>() != kMagic) {
    throw common::DeserializeError("not a clc program (bad magic)");
  }
  if (r.read<std::uint32_t>() != Program::kSerialVersion) {
    throw common::DeserializeError("clc program version mismatch");
  }
  Program program;
  program.sourceHash = r.readString();

  const auto codeLen = r.read<std::uint64_t>();
  program.code.reserve(static_cast<std::size_t>(codeLen));
  for (std::uint64_t i = 0; i < codeLen; ++i) {
    Instr instr;
    instr.op = static_cast<Op>(r.read<std::uint8_t>());
    instr.tag = static_cast<TypeTag>(r.read<std::uint8_t>());
    instr.a = r.read<std::int32_t>();
    program.code.push_back(instr);
  }

  program.constants = r.readVector<std::uint64_t>();

  const auto funcCount = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < funcCount; ++i) {
    FunctionInfo f;
    f.name = r.readString();
    f.codeStart = r.read<std::uint32_t>();
    f.codeEnd = r.read<std::uint32_t>();
    f.frameSize = r.read<std::uint32_t>();
    f.returnsValue = r.read<std::uint8_t>() != 0;
    f.returnsStruct = r.read<std::uint8_t>() != 0;
    f.returnSize = r.read<std::uint32_t>();
    f.isKernel = r.read<std::uint8_t>() != 0;
    const auto paramCount = r.read<std::uint64_t>();
    for (std::uint64_t j = 0; j < paramCount; ++j) {
      ParamInfo p;
      p.name = r.readString();
      p.kind = static_cast<ParamKind>(r.read<std::uint8_t>());
      p.size = r.read<std::uint32_t>();
      p.scalarTag = static_cast<TypeTag>(r.read<std::uint8_t>());
      p.frameOffset = r.read<std::uint32_t>();
      f.params.push_back(std::move(p));
    }
    program.functions.push_back(std::move(f));
  }

  const auto kernelCount = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < kernelCount; ++i) {
    KernelInfo k;
    k.name = r.readString();
    k.functionIndex = r.read<std::uint32_t>();
    k.staticLocalSize = r.read<std::uint32_t>();
    program.kernels.push_back(std::move(k));
  }

  program.optLevel = r.read<std::uint8_t>();
  program.cycleCosts = r.readVector<std::uint32_t>();

  // Structural validation so a corrupted cache entry cannot crash the VM.
  const auto codeSize = static_cast<std::uint32_t>(program.code.size());
  for (const FunctionInfo& f : program.functions) {
    if (f.codeStart > f.codeEnd || f.codeEnd > codeSize) {
      throw common::DeserializeError("function code range out of bounds");
    }
  }
  for (const KernelInfo& k : program.kernels) {
    if (k.functionIndex >= program.functions.size()) {
      throw common::DeserializeError("kernel function index out of bounds");
    }
  }
  if (!program.cycleCosts.empty() &&
      program.cycleCosts.size() != program.code.size()) {
    throw common::DeserializeError("cycle-cost table size mismatch");
  }
  // Frame-addressed superinstructions skip the VM's runtime bounds checks,
  // so their offsets must be proven against the owning function's frame
  // here. Instructions outside every function get limit 0 (always reject).
  std::vector<std::uint32_t> frameLimit(program.code.size(), 0);
  for (const FunctionInfo& f : program.functions) {
    for (std::uint32_t pc = f.codeStart; pc < f.codeEnd; ++pc) {
      frameLimit[pc] = f.frameSize;
    }
  }
  auto validEmbedded = [](Op op) {
    return isBinaryArithOp(op) || isCompareOp(op);
  };
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    const Instr& instr = program.code[pc];
    if (instr.op > kMaxOp) {
      throw common::DeserializeError("unknown opcode");
    }
    if (instr.op == Op::PushConst &&
        (instr.a < 0 ||
         std::size_t(instr.a) >= program.constants.size())) {
      throw common::DeserializeError("constant index out of bounds");
    }
    if (instr.op == Op::Call &&
        (instr.a < 0 || std::size_t(instr.a) >= program.functions.size())) {
      throw common::DeserializeError("call target out of bounds");
    }
    if ((instr.op == Op::Jmp || instr.op == Op::Jz || instr.op == Op::Jnz) &&
        (instr.a < 0 || std::uint32_t(instr.a) > codeSize)) {
      throw common::DeserializeError("jump target out of bounds");
    }
    switch (instr.op) {
      case Op::LoadFrame:
      case Op::StoreFrame:
        if (instr.a < 0 || std::uint64_t(instr.a) + typeTagSize(instr.tag) >
                               frameLimit[pc]) {
          throw common::DeserializeError("frame offset out of bounds");
        }
        break;
      case Op::BinConst:
        if (instr.a < 0 || !validEmbedded(embeddedOp(instr.a)) ||
            std::size_t(embeddedOperand(instr.a)) >=
                program.constants.size()) {
          throw common::DeserializeError("malformed bin_const");
        }
        break;
      case Op::FrameBin:
        if (instr.a < 0 || !validEmbedded(embeddedOp(instr.a)) ||
            std::uint64_t(embeddedOperand(instr.a)) +
                    typeTagSize(instr.tag) >
                frameLimit[pc]) {
          throw common::DeserializeError("malformed frame_bin");
        }
        break;
      case Op::LoadBin:
        if (instr.a < 0 || !validEmbedded(Op(instr.a))) {
          throw common::DeserializeError("malformed load_bin");
        }
        break;
      case Op::FrameBin2:
        if (instr.a < 0 || !validEmbedded(frame2Op(instr.a)) ||
            std::uint64_t(frame2X(instr.a)) + typeTagSize(instr.tag) >
                frameLimit[pc] ||
            std::uint64_t(frame2Y(instr.a)) + typeTagSize(instr.tag) >
                frameLimit[pc]) {
          throw common::DeserializeError("malformed frame_bin2");
        }
        break;
      case Op::CmpJz:
      case Op::CmpJnz:
        if (instr.a < 0 || !isCompareOp(cmpFromJump(instr.a)) ||
            std::uint32_t(cmpJumpTarget(instr.a)) > codeSize) {
          throw common::DeserializeError("malformed compare-jump");
        }
        break;
      default:
        break;
    }
  }
  return program;
}

} // namespace clc
